package model

import (
	"strings"
	"testing"
)

// figure1Set builds the instance of Figure 1 of the paper: a slow source
// (send 2, recv 3), three fast destinations (1, 1) and one slow destination
// (2, 3), network latency 1.
//
// IDs: 0 = slow source, 1..3 = fast destinations, 4 = slow destination.
func figure1Set(t *testing.T) *MulticastSet {
	t.Helper()
	fast := Node{Send: 1, Recv: 1, Name: "fast"}
	slow := Node{Send: 2, Recv: 3, Name: "slow"}
	s, err := NewMulticastSet(1, slow, fast, fast, fast, slow)
	if err != nil {
		t.Fatalf("figure1Set: %v", err)
	}
	return s
}

// figure1ScheduleA is the schedule of Figure 1(a): source sends to two fast
// nodes; the first fast node sends to a fast node then the slow node.
// Completion (reception) time 10.
func figure1ScheduleA(t *testing.T, s *MulticastSet) *Schedule {
	t.Helper()
	sch := NewSchedule(s)
	sch.MustAddChild(0, 1)
	sch.MustAddChild(0, 2)
	sch.MustAddChild(1, 3)
	sch.MustAddChild(1, 4)
	return sch
}

// figure1ScheduleB is a schedule matching Figure 1(b): the first fast node
// sends to the slow node first, then to the last fast node. Completion
// time 9.
func figure1ScheduleB(t *testing.T, s *MulticastSet) *Schedule {
	t.Helper()
	sch := NewSchedule(s)
	sch.MustAddChild(0, 1)
	sch.MustAddChild(0, 2)
	sch.MustAddChild(1, 4)
	sch.MustAddChild(1, 3)
	return sch
}

func TestFigure1ScheduleA(t *testing.T) {
	s := figure1Set(t)
	sch := figure1ScheduleA(t, s)
	if err := sch.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	tm := ComputeTimes(sch)
	// The paper walks through these exact values: the first fast node
	// receives at time 4, the second at 6, the fast grandchild at 7 and
	// the slow grandchild at 10.
	wantReception := []int64{0, 4, 6, 7, 10}
	for v, want := range wantReception {
		if tm.Reception[v] != want {
			t.Errorf("reception[%d] = %d, want %d", v, tm.Reception[v], want)
		}
	}
	if tm.RT != 10 {
		t.Errorf("RT = %d, want 10 (Figure 1(a))", tm.RT)
	}
	wantDelivery := []int64{0, 3, 5, 6, 7}
	for v, want := range wantDelivery {
		if tm.Delivery[v] != want {
			t.Errorf("delivery[%d] = %d, want %d", v, tm.Delivery[v], want)
		}
	}
}

func TestFigure1ScheduleB(t *testing.T) {
	s := figure1Set(t)
	sch := figure1ScheduleB(t, s)
	if err := sch.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if got := RT(sch); got != 9 {
		t.Errorf("RT = %d, want 9 (Figure 1(b))", got)
	}
}

func TestValidateRejectsBadSets(t *testing.T) {
	cases := []struct {
		name string
		set  MulticastSet
	}{
		{"empty", MulticastSet{Latency: 1}},
		{"zero latency", MulticastSet{Latency: 0, Nodes: []Node{{Send: 1, Recv: 1}}}},
		{"negative latency", MulticastSet{Latency: -2, Nodes: []Node{{Send: 1, Recv: 1}}}},
		{"zero send", MulticastSet{Latency: 1, Nodes: []Node{{Send: 0, Recv: 1}}}},
		{"zero recv", MulticastSet{Latency: 1, Nodes: []Node{{Send: 1, Recv: 0}}}},
		{"uncorrelated", MulticastSet{Latency: 1, Nodes: []Node{{Send: 1, Recv: 5}, {Send: 2, Recv: 1}}}},
		{"equal send different recv", MulticastSet{Latency: 1, Nodes: []Node{{Send: 2, Recv: 5}, {Send: 2, Recv: 1}}}},
	}
	for _, c := range cases {
		if err := c.set.Validate(); err == nil {
			t.Errorf("%s: Validate accepted an invalid set", c.name)
		}
	}
}

func TestValidateAcceptsCorrelatedSets(t *testing.T) {
	s := MulticastSet{Latency: 3, Nodes: []Node{
		{Send: 5, Recv: 9}, {Send: 1, Recv: 2}, {Send: 5, Recv: 9}, {Send: 1, Recv: 2}, {Send: 3, Recv: 3},
	}}
	if err := s.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
}

func TestSortedDestinations(t *testing.T) {
	s := MulticastSet{Latency: 1, Nodes: []Node{
		{Send: 9, Recv: 9}, // source, excluded
		{Send: 5, Recv: 6},
		{Send: 1, Recv: 1},
		{Send: 5, Recv: 6},
		{Send: 2, Recv: 4},
	}}
	got := s.SortedDestinations()
	want := []NodeID{2, 4, 1, 3}
	if len(got) != len(want) {
		t.Fatalf("len = %d, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("SortedDestinations[%d] = %d, want %d (full: %v)", i, got[i], want[i], got)
		}
	}
}

func TestRatioStats(t *testing.T) {
	s := figure1Set(t)
	st := s.Ratios()
	// Fast nodes have ratio 1, slow nodes 1.5.
	if st.AlphaMin != 1.0 || st.AlphaMax != 1.5 {
		t.Errorf("alpha = [%v, %v], want [1, 1.5]", st.AlphaMin, st.AlphaMax)
	}
	// Destination receiving overheads are {1,1,1,3}: beta = 2.
	if st.Beta != 2 {
		t.Errorf("beta = %d, want 2", st.Beta)
	}
}

func TestScheduleValidateIncomplete(t *testing.T) {
	s := figure1Set(t)
	sch := NewSchedule(s)
	sch.MustAddChild(0, 1)
	if sch.Complete() {
		t.Error("Complete() on a partial schedule")
	}
	if err := sch.Validate(); err == nil {
		t.Error("Validate accepted a partial schedule")
	}
}

func TestAddChildErrors(t *testing.T) {
	s := figure1Set(t)
	sch := NewSchedule(s)
	if err := sch.AddChild(0, 0); err == nil {
		t.Error("AddChild(0,0) accepted (source as child)")
	}
	if err := sch.AddChild(1, 2); err == nil {
		t.Error("AddChild from unattached parent accepted")
	}
	sch.MustAddChild(0, 1)
	if err := sch.AddChild(0, 1); err == nil {
		t.Error("double attach accepted")
	}
	if err := sch.AddChild(0, 99); err == nil {
		t.Error("out of range child accepted")
	}
	if err := sch.AddChild(-1, 2); err == nil {
		t.Error("out of range parent accepted")
	}
}

func TestChildRankAndLeaves(t *testing.T) {
	s := figure1Set(t)
	sch := figure1ScheduleA(t, s)
	if r := sch.ChildRank(1); r != 1 {
		t.Errorf("ChildRank(1) = %d, want 1", r)
	}
	if r := sch.ChildRank(2); r != 2 {
		t.Errorf("ChildRank(2) = %d, want 2", r)
	}
	if r := sch.ChildRank(4); r != 2 {
		t.Errorf("ChildRank(4) = %d, want 2", r)
	}
	if r := sch.ChildRank(0); r != 0 {
		t.Errorf("ChildRank(root) = %d, want 0", r)
	}
	leaves := sch.Leaves()
	want := []NodeID{2, 3, 4}
	if len(leaves) != len(want) {
		t.Fatalf("Leaves = %v, want %v", leaves, want)
	}
	for i := range want {
		if leaves[i] != want[i] {
			t.Fatalf("Leaves = %v, want %v", leaves, want)
		}
	}
}

func TestSwapNodesLeaves(t *testing.T) {
	s := figure1Set(t)
	sch := figure1ScheduleA(t, s)
	// Swap leaf 2 (2nd child of source, delivery 5) with leaf 4 (2nd child
	// of node 1, delivery 7).
	if err := sch.SwapNodes(2, 4); err != nil {
		t.Fatalf("SwapNodes: %v", err)
	}
	if err := sch.Validate(); err != nil {
		t.Fatalf("Validate after swap: %v", err)
	}
	tm := ComputeTimes(sch)
	if tm.Delivery[4] != 5 || tm.Delivery[2] != 7 {
		t.Errorf("deliveries after swap: d(4)=%d d(2)=%d, want 5 and 7", tm.Delivery[4], tm.Delivery[2])
	}
	// Slow leaf now delivered at 5, reception 8; fast leaf at 7, reception
	// 8; RT improves from 10 to 8. (This is exactly the leaf-reversal
	// improvement the paper describes at the end of Section 3.)
	if tm.RT != 8 {
		t.Errorf("RT after swap = %d, want 8", tm.RT)
	}
}

func TestSwapNodesSameParent(t *testing.T) {
	s := figure1Set(t)
	sch := figure1ScheduleA(t, s)
	before := ComputeTimes(sch)
	if err := sch.SwapNodes(3, 4); err != nil { // both children of node 1
		t.Fatalf("SwapNodes: %v", err)
	}
	if err := sch.Validate(); err != nil {
		t.Fatalf("Validate after swap: %v", err)
	}
	tm := ComputeTimes(sch)
	if tm.Delivery[4] != before.Delivery[3] || tm.Delivery[3] != before.Delivery[4] {
		t.Errorf("same-parent swap did not exchange delivery times: %v vs %v", tm.Delivery, before.Delivery)
	}
}

func TestSwapNodesParentChild(t *testing.T) {
	s := figure1Set(t)
	sch := figure1ScheduleA(t, s)
	// Node 1 is the parent of node 3. Swapping them must keep the tree valid.
	if err := sch.SwapNodes(1, 3); err != nil {
		t.Fatalf("SwapNodes: %v", err)
	}
	if err := sch.Validate(); err != nil {
		t.Fatalf("Validate after parent-child swap: %v", err)
	}
	// Node 3 takes node 1's position: first child of source with children
	// (1, 4); node 1 becomes a leaf.
	if sch.Parent(3) != 0 || sch.Parent(1) != 3 || sch.Parent(4) != 3 {
		t.Errorf("structure after swap: parent(3)=%d parent(1)=%d parent(4)=%d", sch.Parent(3), sch.Parent(1), sch.Parent(4))
	}
	if !sch.IsLeaf(1) {
		t.Error("node 1 should be a leaf after the swap")
	}
}

func TestSwapNodesErrors(t *testing.T) {
	s := figure1Set(t)
	sch := NewSchedule(s)
	sch.MustAddChild(0, 1)
	if err := sch.SwapNodes(1, 2); err == nil {
		t.Error("SwapNodes with unattached node accepted")
	}
	if err := sch.SwapNodes(0, 1); err == nil {
		t.Error("SwapNodes with the source accepted")
	}
	if err := sch.SwapNodes(1, 1); err != nil {
		t.Errorf("SwapNodes(v, v) should be a no-op, got %v", err)
	}
}

func TestIsLayered(t *testing.T) {
	s := figure1Set(t)
	a := figure1ScheduleA(t, s)
	// Schedule (a) delivers the fast nodes at 3, 5, 6 and the slow one at
	// 7: layered.
	if !IsLayered(a) {
		t.Error("Figure 1(a) should be layered")
	}
	// A schedule delivering the slow destination before a fast one is not
	// layered.
	sch := NewSchedule(s)
	sch.MustAddChild(0, 4)
	sch.MustAddChild(0, 1)
	sch.MustAddChild(0, 2)
	sch.MustAddChild(0, 3)
	if IsLayered(sch) {
		t.Error("slow-first star should not be layered")
	}
}

func TestCloneAndEqual(t *testing.T) {
	s := figure1Set(t)
	a := figure1ScheduleA(t, s)
	c := a.Clone()
	if !a.Equal(c) {
		t.Fatal("clone not equal to original")
	}
	b := figure1ScheduleB(t, s)
	if a.Equal(b) {
		t.Error("Equal() conflates Figure 1(a) and a different child order")
	}
}

func TestCloneIndependence(t *testing.T) {
	s := figure1Set(t)
	a := figure1ScheduleA(t, s)
	c := a.Clone()
	if err := c.SwapNodes(3, 4); err != nil {
		t.Fatalf("SwapNodes: %v", err)
	}
	if a.Equal(c) {
		t.Error("mutating the clone changed the original (or Equal is broken)")
	}
	if err := a.Validate(); err != nil {
		t.Errorf("original invalid after clone mutation: %v", err)
	}
}

func TestStringRendering(t *testing.T) {
	s := figure1Set(t)
	a := figure1ScheduleA(t, s)
	str := a.String()
	if str != "0(1(3 4) 2)" {
		t.Errorf("String() = %q, want %q", str, "0(1(3 4) 2)")
	}
	if !strings.HasPrefix(str, "0(") {
		t.Errorf("String() should start at the root: %q", str)
	}
}

func TestTimeline(t *testing.T) {
	s := figure1Set(t)
	a := figure1ScheduleA(t, s)
	tl := Timeline(a)
	// Source: two sends of length 2 starting at 0.
	src := tl[0]
	if len(src) != 2 || src[0].Kind != "send" || src[0].Start != 0 || src[0].End != 2 || src[1].Start != 2 || src[1].End != 4 {
		t.Errorf("source timeline = %+v", src)
	}
	// Node 1: recv [3,4), then sends [4,5) and [5,6).
	n1 := tl[1]
	if len(n1) != 3 {
		t.Fatalf("node 1 timeline = %+v", n1)
	}
	if n1[0].Kind != "recv" || n1[0].Start != 3 || n1[0].End != 4 || n1[0].Peer != 0 {
		t.Errorf("node 1 recv interval = %+v", n1[0])
	}
	if n1[1].Kind != "send" || n1[1].Start != 4 || n1[1].End != 5 || n1[1].Peer != 3 {
		t.Errorf("node 1 first send = %+v", n1[1])
	}
	if n1[2].Start != 5 || n1[2].End != 6 || n1[2].Peer != 4 {
		t.Errorf("node 1 second send = %+v", n1[2])
	}
	// Leaves have exactly one recv interval.
	for _, v := range []NodeID{2, 3, 4} {
		if len(tl[v]) != 1 || tl[v][0].Kind != "recv" {
			t.Errorf("leaf %d timeline = %+v", v, tl[v])
		}
	}
	// Intervals on any node never overlap.
	for v, iv := range tl {
		for i := 1; i < len(iv); i++ {
			if iv[i].Start < iv[i-1].End {
				t.Errorf("node %d intervals overlap: %+v then %+v", v, iv[i-1], iv[i])
			}
		}
	}
}

func TestSingleNodeSet(t *testing.T) {
	s, err := NewMulticastSet(1, Node{Send: 2, Recv: 2})
	if err != nil {
		t.Fatalf("NewMulticastSet: %v", err)
	}
	sch := NewSchedule(s)
	if !sch.Complete() {
		t.Error("source-only schedule should be complete")
	}
	if err := sch.Validate(); err != nil {
		t.Errorf("Validate: %v", err)
	}
	tm := ComputeTimes(sch)
	if tm.RT != 0 || tm.DT != 0 {
		t.Errorf("times for source-only schedule: RT=%d DT=%d", tm.RT, tm.DT)
	}
	if !IsLayered(sch) {
		t.Error("trivial schedule should be layered")
	}
}

func TestRemoveLeafAndInsertChild(t *testing.T) {
	s := figure1Set(t)
	sch := figure1ScheduleA(t, s)
	// Remove node 3, the first child of node 1.
	parent, idx, err := sch.RemoveLeaf(3)
	if err != nil {
		t.Fatalf("RemoveLeaf: %v", err)
	}
	if parent != 1 || idx != 0 {
		t.Errorf("RemoveLeaf returned (%d, %d), want (1, 0)", parent, idx)
	}
	if sch.Parent(3) != -1 {
		t.Error("node 3 still attached")
	}
	// Node 4 shifted to rank 1: its delivery time drops.
	tm := ComputeTimes(sch)
	if tm.Delivery[4] != 6 {
		t.Errorf("d(4) after removal = %d, want 6", tm.Delivery[4])
	}
	// Undo exactly.
	if err := sch.InsertChild(parent, 3, idx); err != nil {
		t.Fatalf("InsertChild: %v", err)
	}
	if err := sch.Validate(); err != nil {
		t.Fatalf("Validate after reinsert: %v", err)
	}
	restored := figure1ScheduleA(t, s)
	if !sch.Equal(restored) {
		t.Errorf("remove+insert did not restore the tree: %s vs %s", sch, restored)
	}
}

func TestRemoveLeafErrors(t *testing.T) {
	s := figure1Set(t)
	sch := figure1ScheduleA(t, s)
	if _, _, err := sch.RemoveLeaf(1); err == nil {
		t.Error("RemoveLeaf accepted an internal node")
	}
	if _, _, err := sch.RemoveLeaf(0); err == nil {
		t.Error("RemoveLeaf accepted the root")
	}
	partial := NewSchedule(s)
	if _, _, err := partial.RemoveLeaf(2); err == nil {
		t.Error("RemoveLeaf accepted an unattached node")
	}
}

func TestInsertChildErrors(t *testing.T) {
	s := figure1Set(t)
	sch := figure1ScheduleA(t, s)
	if err := sch.InsertChild(0, 3, 0); err == nil {
		t.Error("InsertChild accepted an attached node")
	}
	if _, _, err := sch.RemoveLeaf(3); err != nil {
		t.Fatal(err)
	}
	if err := sch.InsertChild(0, 3, 9); err == nil {
		t.Error("InsertChild accepted an out-of-range index")
	}
	if err := sch.InsertChild(3, 3, 0); err == nil {
		t.Error("InsertChild accepted a self parent")
	}
	if err := sch.InsertChild(0, 3, 1); err != nil {
		t.Fatalf("valid InsertChild rejected: %v", err)
	}
	// Node 3 is now the second child of the source.
	if sch.ChildRank(3) != 2 {
		t.Errorf("rank = %d, want 2", sch.ChildRank(3))
	}
	if err := sch.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestInsertChildIntoUnattachedParent(t *testing.T) {
	s := figure1Set(t)
	sch := NewSchedule(s)
	sch.MustAddChild(0, 1)
	if err := sch.InsertChild(2, 3, 0); err == nil {
		t.Error("InsertChild accepted an unattached parent")
	}
}
