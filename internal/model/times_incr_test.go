package model

import (
	"math/rand"
	"testing"
)

// randSchedule builds a random valid schedule over n destinations with
// correlated overheads.
func randIncrSet(rng *rand.Rand, n int) *MulticastSet {
	nodes := make([]Node, n+1)
	send := int64(1)
	for i := range nodes {
		send += int64(rng.Intn(3))
		// recv is a monotone pure function of send so the model's
		// correlation invariant holds.
		nodes[i] = Node{Send: send, Recv: send + send&1}
	}
	rng.Shuffle(len(nodes), func(i, j int) { nodes[i], nodes[j] = nodes[j], nodes[i] })
	set := &MulticastSet{Latency: int64(1 + rng.Intn(3)), Nodes: nodes}
	if err := set.Validate(); err != nil {
		panic(err)
	}
	return set
}

func randIncrSchedule(rng *rand.Rand, set *MulticastSet) *Schedule {
	sch := NewSchedule(set)
	attached := []NodeID{0}
	for v := 1; v < len(set.Nodes); v++ {
		p := attached[rng.Intn(len(attached))]
		sch.MustAddChild(p, v)
		attached = append(attached, v)
	}
	return sch
}

func requireTimesEqual(t *testing.T, step int, got *Times, sch *Schedule) {
	t.Helper()
	want := ComputeTimes(sch)
	if got.RT != want.RT || got.DT != want.DT {
		t.Fatalf("step %d: incremental RT/DT = %d/%d, full recompute = %d/%d\ntree %s",
			step, got.RT, got.DT, want.RT, want.DT, sch)
	}
	for v := range want.Delivery {
		if got.Delivery[v] != want.Delivery[v] || got.Reception[v] != want.Reception[v] {
			t.Fatalf("step %d: node %d: incremental d/r = %d/%d, full = %d/%d",
				step, v, got.Delivery[v], got.Reception[v], want.Delivery[v], want.Reception[v])
		}
	}
}

// TestRecomputeFromMatchesFullRecompute drives long random sequences of
// the heuristics' move types (swap; leaf relocation with undo) through the
// incremental evaluator and cross-checks every step against a full
// ComputeTimes.
func TestRecomputeFromMatchesFullRecompute(t *testing.T) {
	rng := rand.New(rand.NewSource(31337))
	for trial := 0; trial < 20; trial++ {
		n := 2 + rng.Intn(30)
		set := randIncrSet(rng, n)
		sch := randIncrSchedule(rng, set)
		var tm Times
		ComputeTimesInto(sch, &tm)
		requireTimesEqual(t, -1, &tm, sch)
		for step := 0; step < 60; step++ {
			switch rng.Intn(2) {
			case 0: // swap two destinations
				a := NodeID(1 + rng.Intn(n))
				b := NodeID(1 + rng.Intn(n))
				if a == b {
					continue
				}
				if err := sch.SwapNodes(a, b); err != nil {
					t.Fatal(err)
				}
				tm.RecomputeFrom(sch, a)
				tm.RecomputeFrom(sch, b)
			case 1: // relocate a random leaf to the tail of another parent
				leaf := NodeID(1 + rng.Intn(n))
				if !sch.IsLeaf(leaf) {
					continue
				}
				target := NodeID(rng.Intn(n + 1))
				if target == leaf || target == sch.Parent(leaf) {
					continue
				}
				oldParent, oldIdx, err := sch.RemoveLeaf(leaf)
				if err != nil {
					t.Fatal(err)
				}
				if err := sch.InsertChild(target, leaf, len(sch.Children(target))); err != nil {
					if e2 := sch.InsertChild(oldParent, leaf, oldIdx); e2 != nil {
						t.Fatal(e2)
					}
					tm.RecomputeFrom(sch, oldParent)
					tm.RecomputeFrom(sch, leaf)
					break
				}
				tm.RecomputeFrom(sch, oldParent)
				tm.RecomputeFrom(sch, leaf)
				// Half the time, undo the move the way local search does.
				if rng.Intn(2) == 0 {
					if _, _, err := sch.RemoveLeaf(leaf); err != nil {
						t.Fatal(err)
					}
					if err := sch.InsertChild(oldParent, leaf, oldIdx); err != nil {
						t.Fatal(err)
					}
					tm.RecomputeFrom(sch, oldParent)
					tm.RecomputeFrom(sch, leaf)
				}
			}
			requireTimesEqual(t, step, &tm, sch)
		}
	}
}

// TestComputeTimesIntoAllocFree verifies the reuse contract: after the
// first call, repeated evaluation of same-sized schedules allocates
// nothing, as does the incremental path.
func TestComputeTimesIntoAllocFree(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	set := randIncrSet(rng, 40)
	sch := randIncrSchedule(rng, set)
	var tm Times
	ComputeTimesInto(sch, &tm)
	tm.RecomputeFrom(sch, 1) // builds the max-trees
	allocs := testing.AllocsPerRun(50, func() {
		ComputeTimesInto(sch, &tm)
	})
	if allocs != 0 {
		t.Errorf("ComputeTimesInto allocates %.1f per call after warmup", allocs)
	}
	ComputeTimesInto(sch, &tm)
	allocs = testing.AllocsPerRun(50, func() {
		tm.RecomputeFrom(sch, 5)
	})
	if allocs != 0 {
		t.Errorf("RecomputeFrom allocates %.1f per call after warmup", allocs)
	}
}

// TestRTIntoMatchesRT pins the shorthand to the allocating original.
func TestRTIntoMatchesRT(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	var tm Times
	for trial := 0; trial < 10; trial++ {
		set := randIncrSet(rng, 1+rng.Intn(20))
		sch := randIncrSchedule(rng, set)
		if got, want := RTInto(sch, &tm), RT(sch); got != want {
			t.Fatalf("trial %d: RTInto = %d, RT = %d", trial, got, want)
		}
	}
}

// TestCopyFromReusesBuffers checks CopyFrom's structural fidelity and its
// error on mismatched sizes.
func TestCopyFromReusesBuffers(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	set := randIncrSet(rng, 12)
	a := randIncrSchedule(rng, set)
	b := NewSchedule(set)
	if err := b.CopyFrom(a); err != nil {
		t.Fatal(err)
	}
	if !a.Equal(b) {
		t.Fatal("CopyFrom result not Equal to source")
	}
	if err := b.Validate(); err != nil {
		t.Fatal(err)
	}
	// Mutating the copy must not affect the original.
	x := NodeID(1 + rng.Intn(12))
	y := NodeID(1 + rng.Intn(12))
	if x != y {
		if err := b.SwapNodes(x, y); err != nil {
			t.Fatal(err)
		}
		if a.Equal(b) {
			t.Fatal("copy shares structure with source")
		}
	}
	other := randIncrSet(rng, 5)
	if err := NewSchedule(other).CopyFrom(a); err == nil {
		t.Error("CopyFrom accepted mismatched sizes")
	}
}
