package model

import (
	"math/rand"
	"testing"
)

// The straightforward scalar forms of every kernel in kernels.go, kept as
// the parity oracle: the kernels are restructured for bounds-check
// elimination and branch-free maxima, and these references are the code
// they must remain bit-identical to. Randomized cross-checks below cover
// empty spans, single elements, and adversarially tied values.

func refChildTimes(d, r, rc []int64, base, sv int64) {
	for i := range d {
		d[i] = base + int64(i+1)*sv
		r[i] = d[i] + rc[i]
	}
}

func refChildCand(nr, rc []int64, st []uint32, gen uint32, base, sv, movD, movR int64) (int64, int64) {
	for i := range nr {
		dd := base + int64(i+1)*sv
		nr[i] = dd + rc[i]
		st[i] = gen
		if dd > movD {
			movD = dd
		}
		if nr[i] > movR {
			movR = nr[i]
		}
	}
	return movD, movR
}

func refPrefixMax2(preA, preB, a, b []int64) (int64, int64) {
	runA, runB := int64(0), int64(0)
	for i := range preA {
		preA[i], preB[i] = runA, runB
		if a[i] > runA {
			runA = a[i]
		}
		if b[i] > runB {
			runB = b[i]
		}
	}
	return runA, runB
}

func refSuffixMax2(sufA, sufB, a, b []int64) {
	runA, runB := int64(0), int64(0)
	for i := len(sufA) - 1; i >= 0; i-- {
		if a[i] > runA {
			runA = a[i]
		}
		if b[i] > runB {
			runB = b[i]
		}
		sufA[i], sufB[i] = runA, runB
	}
}

func refMax2(a, b []int64, mA, mB int64) (int64, int64) {
	for i := range a {
		if a[i] > mA {
			mA = a[i]
		}
		if b[i] > mB {
			mB = b[i]
		}
	}
	return mA, mB
}

func refLaneStep(acc, sv, lat, rc, d, r, maxD, maxR []int64) {
	for b := range acc {
		acc[b] += sv[b]
		d[b] = acc[b] + lat[b]
		r[b] = d[b] + rc[b]
		if d[b] > maxD[b] {
			maxD[b] = d[b]
		}
		if r[b] > maxR[b] {
			maxR[b] = r[b]
		}
	}
}

// randRow draws a row of small values with frequent ties: tied maxima are
// where a wrong comparison direction or off-by-one would hide.
func randRow(rng *rand.Rand, n int) []int64 {
	row := make([]int64, n)
	for i := range row {
		row[i] = int64(rng.Intn(7))
	}
	return row
}

func eqRows(a, b []int64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestKernelsMatchScalarReference(t *testing.T) {
	rng := rand.New(rand.NewSource(2024))
	for trial := 0; trial < 500; trial++ {
		n := rng.Intn(20) // includes empty spans
		base := int64(rng.Intn(50))
		sv := int64(1 + rng.Intn(5))
		rc := randRow(rng, n)

		d1, r1 := make([]int64, n), make([]int64, n)
		d2, r2 := make([]int64, n), make([]int64, n)
		kernChildTimes(d1, r1, rc, base, sv)
		refChildTimes(d2, r2, rc, base, sv)
		if !eqRows(d1, d2) || !eqRows(r1, r2) {
			t.Fatalf("trial %d: kernChildTimes diverges: d %v vs %v, r %v vs %v", trial, d1, d2, r1, r2)
		}

		movD, movR := int64(rng.Intn(60)), int64(rng.Intn(60))
		gen := uint32(1 + rng.Intn(3))
		nr1, st1 := make([]int64, n), make([]uint32, n)
		nr2, st2 := make([]int64, n), make([]uint32, n)
		gd1, gr1 := kernChildCand(nr1, rc, st1, gen, base, sv, movD, movR)
		gd2, gr2 := refChildCand(nr2, rc, st2, gen, base, sv, movD, movR)
		if gd1 != gd2 || gr1 != gr2 || !eqRows(nr1, nr2) {
			t.Fatalf("trial %d: kernChildCand diverges: maxima %d/%d vs %d/%d, rows %v vs %v",
				trial, gd1, gr1, gd2, gr2, nr1, nr2)
		}
		for i := range st1 {
			if st1[i] != gen || st2[i] != gen {
				t.Fatalf("trial %d: stamp not written at %d", trial, i)
			}
		}

		a, b := randRow(rng, n), randRow(rng, n)
		pA1, pB1 := make([]int64, n), make([]int64, n)
		pA2, pB2 := make([]int64, n), make([]int64, n)
		mA1, mB1 := kernPrefixMax2(pA1, pB1, a, b)
		mA2, mB2 := refPrefixMax2(pA2, pB2, a, b)
		if mA1 != mA2 || mB1 != mB2 || !eqRows(pA1, pA2) || !eqRows(pB1, pB2) {
			t.Fatalf("trial %d: kernPrefixMax2 diverges on a=%v b=%v", trial, a, b)
		}

		sA1, sB1 := make([]int64, n), make([]int64, n)
		sA2, sB2 := make([]int64, n), make([]int64, n)
		kernSuffixMax2(sA1, sB1, a, b)
		refSuffixMax2(sA2, sB2, a, b)
		if !eqRows(sA1, sA2) || !eqRows(sB1, sB2) {
			t.Fatalf("trial %d: kernSuffixMax2 diverges on a=%v b=%v", trial, a, b)
		}

		xA1, xB1 := kernMax2(a, b, movD, movR)
		xA2, xB2 := refMax2(a, b, movD, movR)
		if xA1 != xA2 || xB1 != xB2 {
			t.Fatalf("trial %d: kernMax2 = %d/%d, reference %d/%d", trial, xA1, xB1, xA2, xB2)
		}

		acc1, acc2 := randRow(rng, n), make([]int64, n)
		copy(acc2, acc1)
		svr, lat := randRow(rng, n), randRow(rng, n)
		ld1, lr1 := make([]int64, n), make([]int64, n)
		ld2, lr2 := make([]int64, n), make([]int64, n)
		mD1, mR1 := randRow(rng, n), randRow(rng, n)
		mD2, mR2 := make([]int64, n), make([]int64, n)
		copy(mD2, mD1)
		copy(mR2, mR1)
		kernLaneStep(acc1, svr, lat, rc, ld1, lr1, mD1, mR1)
		refLaneStep(acc2, svr, lat, rc, ld2, lr2, mD2, mR2)
		if !eqRows(acc1, acc2) || !eqRows(ld1, ld2) || !eqRows(lr1, lr2) ||
			!eqRows(mD1, mD2) || !eqRows(mR1, mR2) {
			t.Fatalf("trial %d: kernLaneStep diverges", trial)
		}

		fill := randRow(rng, n)
		v := int64(rng.Intn(9))
		kernFill(fill, v)
		for i := range fill {
			if fill[i] != v {
				t.Fatalf("trial %d: kernFill left %d at %d", trial, fill[i], i)
			}
		}
	}
}
