package model

import (
	"math/rand"
	"testing"
)

// FuzzRecomputeFrom drives random schedules through fuzzer-chosen move
// sequences, cross-checking both incremental evaluators against a
// from-scratch ComputeTimes at every step: Engine.Eval/EvalMoves must
// predict the post-move times exactly, and Times.RecomputeFrom must
// reproduce them exactly after the move is applied.
//
// The byte stream encodes one move per 3-byte group: a kind byte (even =
// swap, odd = relocate) and two operand bytes reduced modulo the node
// count. Invalid operands (same node, non-leaf relocation, relocation to
// the current parent) are skipped, so every corpus input is a valid
// drive sequence.
func FuzzRecomputeFrom(f *testing.F) {
	f.Add(uint64(1), []byte{0, 1, 2})
	f.Add(uint64(7), []byte{1, 3, 0, 0, 2, 5})
	f.Add(uint64(42), []byte{0, 1, 2, 1, 4, 0, 0, 3, 3, 1, 2, 2})
	f.Add(uint64(31337), []byte{2, 9, 9, 1, 1, 1, 0, 0, 0, 3, 7, 5, 4, 2, 6})
	f.Fuzz(func(t *testing.T, seed uint64, ops []byte) {
		rng := rand.New(rand.NewSource(int64(seed)))
		n := 2 + int(seed%22)
		var set *MulticastSet
		if seed%3 == 0 {
			set = recvTiedSet(rng, n)
		} else {
			set = randIncrSet(rng, n)
		}
		sch := randIncrSchedule(rng, set)
		var tm Times
		ComputeTimesInto(sch, &tm)
		var eng Engine
		eng.Attach(sch)
		out := make([]int64, 1)
		for i := 0; i+2 < len(ops); i += 3 {
			kind, x, y := ops[i], 1+int(ops[i+1])%n, 1+int(ops[i+2])%n
			if x == y {
				continue
			}
			var mv Move
			var dirtyA, dirtyB NodeID
			if kind%2 == 0 {
				mv = SwapMove(x, y)
				dirtyA, dirtyB = x, y
			} else {
				if !sch.IsLeaf(x) {
					continue
				}
				target := NodeID(int(ops[i+2]) % (n + 1)) // targets include the root
				if target == x || target == sch.Parent(x) {
					continue
				}
				mv = RelocateMove(x, target)
				dirtyA, dirtyB = sch.Parent(x), x
			}
			// Non-mutating batch evaluation first.
			eng.EvalMoves([]Move{mv}, out)
			evalDT, evalRT := eng.Eval(mv)
			if evalRT != out[0] {
				t.Fatalf("Eval %d vs EvalMoves %d for %v", evalRT, out[0], mv)
			}
			// Apply the move the way the heuristics do, alternating
			// between the in-place swap commit and a full re-attach.
			if mv.Kind == MoveSwap {
				if err := sch.SwapNodes(mv.A, mv.B); err != nil {
					t.Fatal(err)
				}
				if i%2 == 0 {
					eng.CommitSwap(mv.A, mv.B)
				} else {
					eng.Attach(sch)
				}
			} else {
				if _, _, err := sch.RemoveLeaf(mv.A); err != nil {
					t.Fatal(err)
				}
				if err := sch.InsertChild(mv.B, mv.A, len(sch.Children(mv.B))); err != nil {
					t.Fatal(err)
				}
				eng.Attach(sch)
			}
			tm.RecomputeFrom(sch, dirtyA)
			tm.RecomputeFrom(sch, dirtyB)
			fresh := ComputeTimes(sch)
			if evalRT != fresh.RT || evalDT != fresh.DT {
				t.Fatalf("move %v: eval DT/RT %d/%d, fresh %d/%d\ntree %s",
					mv, evalDT, evalRT, fresh.DT, fresh.RT, sch)
			}
			if tm.RT != fresh.RT || tm.DT != fresh.DT {
				t.Fatalf("move %v: RecomputeFrom DT/RT %d/%d, fresh %d/%d\ntree %s",
					mv, tm.DT, tm.RT, fresh.DT, fresh.RT, sch)
			}
			if eng.RT() != fresh.RT || eng.DT() != fresh.DT {
				t.Fatalf("move %v: re-attached engine DT/RT %d/%d, fresh %d/%d",
					mv, eng.DT(), eng.RT(), fresh.DT, fresh.RT)
			}
			for v := range fresh.Delivery {
				if tm.Delivery[v] != fresh.Delivery[v] || tm.Reception[v] != fresh.Reception[v] {
					t.Fatalf("move %v: node %d incremental d/r %d/%d, fresh %d/%d",
						mv, v, tm.Delivery[v], tm.Reception[v], fresh.Delivery[v], fresh.Reception[v])
				}
			}
		}
	})
}
