// Package model implements the heterogeneous receive-send communication
// model of Banikazemi et al. (1999) as used by Libeskind-Hadas and Hartline,
// "Efficient Multicast in Heterogeneous Networks of Workstations" (ICPP
// 2000 Workshop on Network-Based Computing).
//
// In this model every node p carries a sending overhead osend(p) and a
// receiving overhead orecv(p); a single network latency L applies to every
// point-to-point transmission. A multicast schedule is a directed tree whose
// root is the source; each vertex forwards the message to its children one
// at a time in a fixed left-to-right order. If r(v) is the time at which v
// has finished incurring its receiving overhead (r(source)=0), then the i-th
// child w of v is delivered at
//
//	d(w) = r(v) + i*osend(v) + L
//
// and completes reception at r(w) = d(w) + orecv(w). The optimal multicast
// problem asks for the schedule minimizing the maximum reception time, which
// is NP-complete in the strong sense.
package model

import (
	"fmt"
	"sort"
)

// NodeID identifies a node within a MulticastSet. IDs are indices into the
// set's Nodes slice: the source is always ID 0.
type NodeID = int

// Node describes one workstation participating in a multicast. Overheads
// are positive integers measured in abstract time units, exactly as the
// paper assumes. For a concrete message the caller folds the fixed and
// per-byte overhead components into these values (see package cluster).
type Node struct {
	// Send is the sending overhead osend: the time the node is busy per
	// outgoing transmission.
	Send int64
	// Recv is the receiving overhead orecv: the time the node is busy
	// absorbing an incoming message after it is delivered.
	Recv int64
	// Name is an optional human-readable label used in rendered output.
	Name string
}

// Ratio returns the receive-send ratio orecv/osend of the node as a float.
func (n Node) Ratio() float64 { return float64(n.Recv) / float64(n.Send) }

// MulticastSet is an instance of the multicast problem: a source node,
// destination nodes, and the global network latency.
type MulticastSet struct {
	// Latency is the network latency L incurred by every transmission.
	Latency int64
	// Nodes holds the participating nodes; Nodes[0] is the source and
	// Nodes[1:] are the destinations.
	Nodes []Node
}

// NewMulticastSet builds a multicast set from a source node, destination
// nodes and a latency, and validates it.
func NewMulticastSet(latency int64, source Node, dests ...Node) (*MulticastSet, error) {
	s := &MulticastSet{Latency: latency, Nodes: append([]Node{source}, dests...)}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return s, nil
}

// N returns the number of destination nodes (the paper's n).
func (s *MulticastSet) N() int { return len(s.Nodes) - 1 }

// Source returns the source node (index 0).
func (s *MulticastSet) Source() Node { return s.Nodes[0] }

// Validate checks the model's assumptions: at least a source, positive
// integer overheads and latency, and overheads directly correlated with
// node speed (osend(p) < osend(q) iff orecv(p) < orecv(q)); the correlation
// check is O(n log n).
func (s *MulticastSet) Validate() error {
	if len(s.Nodes) == 0 {
		return fmt.Errorf("model: multicast set has no nodes")
	}
	if s.Latency <= 0 {
		return fmt.Errorf("model: latency must be a positive integer, got %d", s.Latency)
	}
	for i, n := range s.Nodes {
		if n.Send <= 0 || n.Recv <= 0 {
			return fmt.Errorf("model: node %d has non-positive overheads (send=%d recv=%d)", i, n.Send, n.Recv)
		}
	}
	// Correlation: after sorting by Send, Recv must be non-decreasing and
	// equal Sends must have equal Recvs ordered consistently. The paper
	// assumes osend(p) < osend(q) <=> orecv(p) < orecv(q).
	idx := make([]int, len(s.Nodes))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool {
		na, nb := s.Nodes[idx[a]], s.Nodes[idx[b]]
		if na.Send != nb.Send {
			return na.Send < nb.Send
		}
		return na.Recv < nb.Recv
	})
	for i := 1; i < len(idx); i++ {
		prev, cur := s.Nodes[idx[i-1]], s.Nodes[idx[i]]
		if prev.Send < cur.Send && prev.Recv > cur.Recv {
			return fmt.Errorf("model: overheads not correlated: node %q (send=%d recv=%d) vs node %q (send=%d recv=%d)",
				prev.Name, prev.Send, prev.Recv, cur.Name, cur.Send, cur.Recv)
		}
		if prev.Send == cur.Send && prev.Recv != cur.Recv {
			return fmt.Errorf("model: overheads not correlated: equal send overhead %d with receive overheads %d and %d",
				prev.Send, prev.Recv, cur.Recv)
		}
	}
	return nil
}

// Clone returns a deep copy of the multicast set.
func (s *MulticastSet) Clone() *MulticastSet {
	nodes := make([]Node, len(s.Nodes))
	copy(nodes, s.Nodes)
	return &MulticastSet{Latency: s.Latency, Nodes: nodes}
}

// SortedDestinations returns the destination IDs (1..n) in non-decreasing
// order of overhead, the canonical indexing p1..pn the paper uses. Ties are
// broken by ID for determinism.
func (s *MulticastSet) SortedDestinations() []NodeID {
	ids := make([]NodeID, 0, s.N())
	for i := 1; i < len(s.Nodes); i++ {
		ids = append(ids, i)
	}
	sort.Slice(ids, func(a, b int) bool {
		na, nb := s.Nodes[ids[a]], s.Nodes[ids[b]]
		if na.Send != nb.Send {
			return na.Send < nb.Send
		}
		if na.Recv != nb.Recv {
			return na.Recv < nb.Recv
		}
		return ids[a] < ids[b]
	})
	return ids
}

// RatioStats summarizes the receive-send ratios of a multicast set.
type RatioStats struct {
	// AlphaMin and AlphaMax bound the receive-send ratios over all nodes
	// (source included, matching Theorem 1's indexing 0 <= i <= n).
	AlphaMin, AlphaMax float64
	// Beta is the difference between the maximum and minimum receiving
	// overheads over the destination nodes (indices 1..n).
	Beta int64
}

// Ratios computes the Theorem 1 parameters for the set.
func (s *MulticastSet) Ratios() RatioStats {
	st := RatioStats{AlphaMin: s.Nodes[0].Ratio(), AlphaMax: s.Nodes[0].Ratio()}
	for _, n := range s.Nodes {
		r := n.Ratio()
		if r < st.AlphaMin {
			st.AlphaMin = r
		}
		if r > st.AlphaMax {
			st.AlphaMax = r
		}
	}
	if s.N() > 0 {
		minR, maxR := s.Nodes[1].Recv, s.Nodes[1].Recv
		for _, n := range s.Nodes[2:] {
			if n.Recv < minR {
				minR = n.Recv
			}
			if n.Recv > maxR {
				maxR = n.Recv
			}
		}
		st.Beta = maxR - minR
	}
	return st
}

// Scheduler constructs a multicast schedule for a multicast set. All
// scheduling algorithms in this repository (the paper's greedy, the exact
// DP, and the baselines) implement this interface.
type Scheduler interface {
	// Name identifies the algorithm in tables and traces.
	Name() string
	// Schedule builds a schedule for the set. Implementations must not
	// retain or mutate the set.
	Schedule(set *MulticastSet) (*Schedule, error)
}
