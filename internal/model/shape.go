package model

// treeShape is the flat BFS mirror of a schedule tree shared by the
// single-schedule Engine and the schedule-major BatchEngine: positions in
// BFS layer order with every parent's children contiguous, so any subtree
// is at most two contiguous spans per layer and each layer is one position
// range. The shape carries no times or overheads — those live in the
// embedding engine, laid out to suit its access pattern (one value per
// position for Engine, one row of lanes per position for BatchEngine).
type treeShape struct {
	m int // attached node count (= len(order))

	order        []NodeID // position -> occupying node
	pos          []int32  // node -> position, -1 if unattached
	parentPos    []int32  // position -> parent position, -1 for the root
	rank         []int64  // position -> 1-based child rank, 0 for the root
	kidLo, kidHi []int32  // position -> children span [kidLo,kidHi) in order
	layerOf      []int32  // position -> layer (root = 0)
	layerOff     []int32  // layer l occupies positions [layerOff[l], layerOff[l+1])
}

// build (re)derives the flat mirror of sch, reusing every buffer: after
// the first call at a given instance size it allocates nothing. Children
// are appended in parent-position order, so each parent's children are
// contiguous and each layer is a single position range.
func (s *treeShape) build(sch *Schedule) {
	n := len(sch.Set.Nodes)
	s.pos = resizeInt32(s.pos, n)
	for i := range s.pos {
		s.pos[i] = -1
	}
	s.order = resizeNodeID(s.order, n)
	s.parentPos = resizeInt32(s.parentPos, n)
	s.rank = resizeInt64(s.rank, n)
	s.kidLo = resizeInt32(s.kidLo, n)
	s.kidHi = resizeInt32(s.kidHi, n)
	s.layerOf = resizeInt32(s.layerOf, n)

	s.order[0] = 0
	s.pos[0] = 0
	s.parentPos[0] = -1
	s.rank[0] = 0
	s.layerOf[0] = 0
	write := 1
	for i := 0; i < write; i++ {
		s.kidLo[i] = int32(write)
		for rk, w := range sch.children[s.order[i]] {
			s.order[write] = w
			s.pos[w] = int32(write)
			s.parentPos[write] = int32(i)
			s.rank[write] = int64(rk + 1)
			s.layerOf[write] = s.layerOf[i] + 1
			write++
		}
		s.kidHi[i] = int32(write)
	}
	s.m = write

	layers := int(s.layerOf[write-1]) + 1
	s.layerOff = resizeInt32(s.layerOff, layers+1)
	s.layerOff[0] = 0
	for i := 0; i < write; i++ {
		s.layerOff[s.layerOf[i]+1] = int32(i + 1)
	}
}

// layers returns the number of BFS layers of the attached shape.
func (s *treeShape) layers() int { return len(s.layerOff) - 1 }
