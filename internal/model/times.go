package model

// Times holds the timing of a schedule under the receive-send model. The
// zero value is ready for use with ComputeTimesInto / RTInto, which reuse
// its buffers across calls; RecomputeFrom additionally maintains the
// completion times incrementally under local schedule edits, so move
// evaluation re-walks only the affected subtree, without allocating.
// Heuristic neighborhood loops should prefer Engine.EvalMoves, which
// scores candidates against the structure-of-arrays layout without
// mutating anything.
type Times struct {
	// Delivery[v] is d(v), the time the message is delivered to v. The
	// source has Delivery[0] = 0 by convention.
	Delivery []int64
	// Reception[v] is r(v) = d(v) + orecv(v) for destinations and 0 for
	// the source (the paper sets r(p0) = 0).
	Reception []int64
	// DT is the delivery completion time max_v d(v).
	DT int64
	// RT is the reception completion time max_v r(v), the objective the
	// paper minimizes.
	RT int64

	stack []NodeID // DFS scratch shared by the full and subtree walks
	aux   []int64  // flat scratch for the non-base cost models
}

// ComputeTimes evaluates the model recurrences on a schedule, assuming (as
// the paper does, w.l.o.g.) that no sender idles between transmissions:
//
//	r(source) = 0
//	d(w_i)    = r(v) + i*osend(v) + L   for the i-th child w_i of v
//	r(w)      = d(w) + orecv(w)
//
// The schedule must be structurally valid (see Schedule.Validate); nodes
// not attached yet are reported with zero times.
//
// ComputeTimes is the base model only: a schedule bound to a different
// cost model (Schedule.BindModel) panics here rather than silently
// reporting base times for a plan built under another objective — use
// EvalTimes for model-dispatching evaluation.
func ComputeTimes(t *Schedule) Times {
	var tm Times
	ComputeTimesInto(t, &tm)
	return tm
}

// ComputeTimesInto is ComputeTimes writing into tm, reusing its buffers:
// after the first call at a given instance size it allocates nothing.
// Like ComputeTimes it refuses schedules bound to a non-base cost model.
func ComputeTimesInto(t *Schedule, tm *Times) {
	t.requireBase("ComputeTimes")
	computeBaseTimesInto(t, tm)
}

// computeBaseTimesInto is the unguarded base-model recurrence, shared by
// ComputeTimesInto and the cost models built on top of the base times
// (BaseModel, BarrierModel).
func computeBaseTimesInto(t *Schedule, tm *Times) {
	n := len(t.Set.Nodes)
	tm.Delivery = resizeInt64(tm.Delivery, n)
	tm.Reception = resizeInt64(tm.Reception, n)
	for i := range tm.Delivery {
		tm.Delivery[i] = 0
		tm.Reception[i] = 0
	}
	tm.DT, tm.RT = 0, 0
	L := t.Set.Latency
	// Iterative DFS from the root; children depend only on the parent's
	// reception time.
	stack := append(tm.stack[:0], 0)
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		rv := tm.Reception[v]
		sv := t.Set.Nodes[v].Send
		for i, w := range t.children[v] {
			d := rv + int64(i+1)*sv + L
			tm.Delivery[w] = d
			tm.Reception[w] = d + t.Set.Nodes[w].Recv
			if d > tm.DT {
				tm.DT = d
			}
			if tm.Reception[w] > tm.RT {
				tm.RT = tm.Reception[w]
			}
			stack = append(stack, w)
		}
	}
	tm.stack = stack[:0]
}

// RecomputeFrom updates tm after a local edit of the schedule: it
// re-derives dirty's delivery from its parent's current reception and
// child rank, re-walks only dirty's subtree, and refreshes DT and RT with
// one contiguous rescan of the flat time arrays — O(subtree + n) total,
// the rescan being two cache-friendly linear max passes that replaced
// the former twin max-trees and their per-touched-node log-factor
// refresh. That makes this the compatibility path, not the fast one:
// search loops evaluating many candidates should use Engine.EvalMoves,
// whose layer aggregates amortize the completion-time maintenance across
// a whole neighborhood instead of paying a full rescan per move. tm must
// hold valid times for every node outside dirty's subtree (from a prior
// ComputeTimesInto or RecomputeFrom on the same schedule).
//
// A move that changes several positions (a swap, a leaf relocation) is
// handled by one RecomputeFrom per affected subtree root. Any call order
// converges: each call re-reads the parents' current receptions, and a
// root whose parent was still stale is always nested inside another dirty
// root's subtree, whose own call rewrites it.
//
// A detached destination (RemoveLeaf'd but not yet reinserted) gets zero
// times, matching the ComputeTimes convention.
func (tm *Times) RecomputeFrom(t *Schedule, dirty NodeID) {
	t.requireBase("RecomputeFrom")
	n := len(t.Set.Nodes)
	if len(tm.Delivery) != n || len(tm.Reception) != n {
		// Different instance size: incremental state is meaningless.
		computeBaseTimesInto(t, tm)
		return
	}
	L := t.Set.Latency
	switch {
	case dirty == 0:
		tm.Delivery[0], tm.Reception[0] = 0, 0
	case t.parent[dirty] == -1:
		tm.Delivery[dirty], tm.Reception[dirty] = 0, 0
		tm.rescanCompletion()
		return // detached nodes are leaves; nothing below to re-walk
	default:
		p := t.parent[dirty]
		d := tm.Reception[p] + int64(t.ChildRank(dirty))*t.Set.Nodes[p].Send + L
		tm.Delivery[dirty] = d
		tm.Reception[dirty] = d + t.Set.Nodes[dirty].Recv
	}
	stack := append(tm.stack[:0], dirty)
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		rv := tm.Reception[v]
		sv := t.Set.Nodes[v].Send
		for i, w := range t.children[v] {
			d := rv + int64(i+1)*sv + L
			tm.Delivery[w] = d
			tm.Reception[w] = d + t.Set.Nodes[w].Recv
			stack = append(stack, w)
		}
	}
	tm.stack = stack[:0]
	tm.rescanCompletion()
}

// rescanCompletion re-derives DT and RT from the flat arrays with one
// fused branch-free kernel pass over the contiguous int64 slices.
func (tm *Times) rescanCompletion() {
	tm.DT, tm.RT = kernMax2(tm.Delivery, tm.Reception[:len(tm.Delivery)], 0, 0)
}

// resizeInt64 returns s with length n, reusing capacity when possible and
// rounding fresh allocations up to the next power of two, so alternating
// between nearby instance sizes (a heuristic evaluating neighborhoods of
// slightly different schedules, say) does not reallocate on every size
// change.
func resizeInt64(s []int64, n int) []int64 {
	if cap(s) < n {
		return make([]int64, n, growCap(n))
	}
	return s[:n]
}

// growCap rounds n up to a power of two for scratch-buffer allocations.
func growCap(n int) int {
	c := 1
	for c < n {
		c <<= 1
	}
	return c
}

// RT is shorthand for ComputeTimes(t).RT.
func RT(t *Schedule) int64 { return ComputeTimes(t).RT }

// RTInto computes the schedule's reception completion time, reusing tm's
// buffers; the allocation-free form of RT for evaluation loops.
func RTInto(t *Schedule, tm *Times) int64 {
	ComputeTimesInto(t, tm)
	return tm.RT
}

// DT is shorthand for ComputeTimes(t).DT.
func DT(t *Schedule) int64 { return ComputeTimes(t).DT }

// IsLayered reports whether the schedule is layered: for every pair of
// non-root nodes u, w with osend(u) < osend(w), d(u) <= d(w). The paper
// states the definition with a strict inequality on delivery times; we use
// the non-strict form so that ties in delivery time (which the greedy
// algorithm can produce when two senders complete simultaneously) do not
// spuriously fail the check. Every strictly-layered schedule is layered in
// this sense.
func IsLayered(t *Schedule) bool {
	tm := ComputeTimes(t)
	return IsLayeredTimes(t, tm)
}

// IsLayeredTimes is IsLayered with precomputed times.
func IsLayeredTimes(t *Schedule, tm Times) bool {
	n := len(t.Set.Nodes)
	if n <= 2 {
		return true
	}
	// Sort destinations by send overhead; delivery times must be
	// non-decreasing across strictly increasing overhead groups.
	ids := t.Set.SortedDestinations()
	maxSoFar := int64(-1)
	for i := 0; i < len(ids); {
		j := i
		groupMin := tm.Delivery[ids[i]]
		groupMax := groupMin
		for j < len(ids) && t.Set.Nodes[ids[j]].Send == t.Set.Nodes[ids[i]].Send {
			d := tm.Delivery[ids[j]]
			if d < groupMin {
				groupMin = d
			}
			if d > groupMax {
				groupMax = d
			}
			j++
		}
		if groupMin < maxSoFar {
			return false
		}
		if groupMax > maxSoFar {
			maxSoFar = groupMax
		}
		i = j
	}
	return true
}

// Interval is a half-open busy interval [Start, End) on a node's timeline.
type Interval struct {
	Start, End int64
	// Kind is "send" or "recv".
	Kind string
	// Peer is the node on the other end of the transfer: the child being
	// sent to, or the parent being received from.
	Peer NodeID
}

// Timeline returns, for each node, its busy intervals in time order:
// one recv interval (except for the source) followed by one send interval
// per child. Useful for Gantt rendering and for the discrete-event
// simulator's conformance checks.
func Timeline(t *Schedule) [][]Interval {
	tm := ComputeTimes(t)
	n := len(t.Set.Nodes)
	out := make([][]Interval, n)
	for v := 0; v < n; v++ {
		if v != 0 && t.parent[v] == -1 {
			continue
		}
		var iv []Interval
		if v != 0 {
			iv = append(iv, Interval{Start: tm.Delivery[v], End: tm.Reception[v], Kind: "recv", Peer: t.parent[v]})
		}
		rv := tm.Reception[v]
		sv := t.Set.Nodes[v].Send
		for i, w := range t.children[v] {
			iv = append(iv, Interval{Start: rv + int64(i)*sv, End: rv + int64(i+1)*sv, Kind: "send", Peer: w})
		}
		out[v] = iv
	}
	return out
}
