package model

// Times holds the timing of a schedule under the receive-send model.
type Times struct {
	// Delivery[v] is d(v), the time the message is delivered to v. The
	// source has Delivery[0] = 0 by convention.
	Delivery []int64
	// Reception[v] is r(v) = d(v) + orecv(v) for destinations and 0 for
	// the source (the paper sets r(p0) = 0).
	Reception []int64
	// DT is the delivery completion time max_v d(v).
	DT int64
	// RT is the reception completion time max_v r(v), the objective the
	// paper minimizes.
	RT int64
}

// ComputeTimes evaluates the model recurrences on a schedule, assuming (as
// the paper does, w.l.o.g.) that no sender idles between transmissions:
//
//	r(source) = 0
//	d(w_i)    = r(v) + i*osend(v) + L   for the i-th child w_i of v
//	r(w)      = d(w) + orecv(w)
//
// The schedule must be structurally valid (see Schedule.Validate); nodes
// not attached yet are reported with zero times.
func ComputeTimes(t *Schedule) Times {
	n := len(t.Set.Nodes)
	tm := Times{Delivery: make([]int64, n), Reception: make([]int64, n)}
	L := t.Set.Latency
	// Iterative DFS from the root; children depend only on the parent's
	// reception time.
	stack := []NodeID{0}
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		rv := tm.Reception[v]
		sv := t.Set.Nodes[v].Send
		for i, w := range t.children[v] {
			d := rv + int64(i+1)*sv + L
			tm.Delivery[w] = d
			tm.Reception[w] = d + t.Set.Nodes[w].Recv
			if d > tm.DT {
				tm.DT = d
			}
			if tm.Reception[w] > tm.RT {
				tm.RT = tm.Reception[w]
			}
			stack = append(stack, w)
		}
	}
	return tm
}

// RT is shorthand for ComputeTimes(t).RT.
func RT(t *Schedule) int64 { return ComputeTimes(t).RT }

// DT is shorthand for ComputeTimes(t).DT.
func DT(t *Schedule) int64 { return ComputeTimes(t).DT }

// IsLayered reports whether the schedule is layered: for every pair of
// non-root nodes u, w with osend(u) < osend(w), d(u) <= d(w). The paper
// states the definition with a strict inequality on delivery times; we use
// the non-strict form so that ties in delivery time (which the greedy
// algorithm can produce when two senders complete simultaneously) do not
// spuriously fail the check. Every strictly-layered schedule is layered in
// this sense.
func IsLayered(t *Schedule) bool {
	tm := ComputeTimes(t)
	return IsLayeredTimes(t, tm)
}

// IsLayeredTimes is IsLayered with precomputed times.
func IsLayeredTimes(t *Schedule, tm Times) bool {
	n := len(t.Set.Nodes)
	if n <= 2 {
		return true
	}
	// Sort destinations by send overhead; delivery times must be
	// non-decreasing across strictly increasing overhead groups.
	ids := t.Set.SortedDestinations()
	maxSoFar := int64(-1)
	for i := 0; i < len(ids); {
		j := i
		groupMin := tm.Delivery[ids[i]]
		groupMax := groupMin
		for j < len(ids) && t.Set.Nodes[ids[j]].Send == t.Set.Nodes[ids[i]].Send {
			d := tm.Delivery[ids[j]]
			if d < groupMin {
				groupMin = d
			}
			if d > groupMax {
				groupMax = d
			}
			j++
		}
		if groupMin < maxSoFar {
			return false
		}
		if groupMax > maxSoFar {
			maxSoFar = groupMax
		}
		i = j
	}
	return true
}

// Interval is a half-open busy interval [Start, End) on a node's timeline.
type Interval struct {
	Start, End int64
	// Kind is "send" or "recv".
	Kind string
	// Peer is the node on the other end of the transfer: the child being
	// sent to, or the parent being received from.
	Peer NodeID
}

// Timeline returns, for each node, its busy intervals in time order:
// one recv interval (except for the source) followed by one send interval
// per child. Useful for Gantt rendering and for the discrete-event
// simulator's conformance checks.
func Timeline(t *Schedule) [][]Interval {
	tm := ComputeTimes(t)
	n := len(t.Set.Nodes)
	out := make([][]Interval, n)
	for v := 0; v < n; v++ {
		if v != 0 && t.parent[v] == -1 {
			continue
		}
		var iv []Interval
		if v != 0 {
			iv = append(iv, Interval{Start: tm.Delivery[v], End: tm.Reception[v], Kind: "recv", Peer: t.parent[v]})
		}
		rv := tm.Reception[v]
		sv := t.Set.Nodes[v].Send
		for i, w := range t.children[v] {
			iv = append(iv, Interval{Start: rv + int64(i)*sv, End: rv + int64(i+1)*sv, Kind: "send", Peer: w})
		}
		out[v] = iv
	}
	return out
}
