package batch

import (
	"math"
	"testing"

	"repro/internal/model"
)

func perturbedSweep(workers int) Sweep {
	s := testSweep(workers)
	s.Perturbed = 100
	s.Jitter = 0.3
	s.JitterSeed = 77
	return s
}

// TestPerturbedSweepDeterministicAcrossWorkers pins the robustness axis'
// contract: per-instance seeding makes JitterRT bit-identical whatever
// the pool size.
func TestPerturbedSweepDeterministicAcrossWorkers(t *testing.T) {
	serial, err := perturbedSweep(1).Run()
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{0, 3, 7} {
		par, err := perturbedSweep(workers).Run()
		if err != nil {
			t.Fatal(err)
		}
		for i := range serial {
			if len(par[i].JitterRT) != len(serial[i].JitterRT) {
				t.Fatalf("workers=%d trial %d: JitterRT sizes differ", workers, i)
			}
			for name, v := range serial[i].JitterRT {
				if pv := par[i].JitterRT[name]; pv != v {
					t.Fatalf("workers=%d trial %d %s: JitterRT %v, serial %v", workers, i, name, pv, v)
				}
			}
		}
	}
}

// TestPerturbedSweepMeansAreSane checks every mean perturbed completion
// time sits inside the jitter envelope of its nominal score: with
// amplitude J every drawn cost is within [1-J, 1+J] of nominal (plus the
// >=1 clamp), so any schedule's perturbed RT — and hence the mean — is
// too.
func TestPerturbedSweepMeansAreSane(t *testing.T) {
	results, err := perturbedSweep(0).Run()
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range results {
		if r.Err != nil {
			t.Fatal(r.Err)
		}
		if len(r.JitterRT) != len(r.RT) {
			t.Fatalf("trial %d: %d jitter entries for %d schedulers", r.Index, len(r.JitterRT), len(r.RT))
		}
		for name, nominal := range r.RT {
			mean, ok := r.JitterRT[name]
			if !ok {
				t.Fatalf("trial %d: no JitterRT for %s", r.Index, name)
			}
			// Slack absorbs per-cost integer truncation (up to one unit
			// per hop) and the >=1 clamp on tiny bases.
			lo, hi := 0.7*float64(nominal)-64, 1.31*float64(nominal)+64
			if mean < lo || mean > hi {
				t.Fatalf("trial %d %s: mean perturbed RT %v outside [%v, %v] around nominal %d",
					r.Index, name, mean, lo, hi, nominal)
			}
			if math.IsNaN(mean) {
				t.Fatalf("trial %d %s: NaN mean", r.Index, name)
			}
		}
	}
}

// TestSweepWithoutPerturbationHasNoJitterRT checks the axis is opt-in.
func TestSweepWithoutPerturbationHasNoJitterRT(t *testing.T) {
	results, err := testSweep(2).Run()
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range results {
		if r.JitterRT != nil {
			t.Fatalf("trial %d: unexpected JitterRT %v", r.Index, r.JitterRT)
		}
	}
}

// TestPerturbedSweepValidation checks amplitude and draw-count bounds.
func TestPerturbedSweepValidation(t *testing.T) {
	s := testSweep(1)
	s.Perturbed = -1
	if _, err := s.Run(); err == nil {
		t.Error("negative perturbed count accepted")
	}
	s = testSweep(1)
	s.Perturbed = 10
	s.Jitter = 1.0
	if _, err := s.Run(); err == nil {
		t.Error("jitter amplitude 1.0 accepted")
	}
	s = testSweep(1)
	s.Perturbed = 10
	s.Jitter = -0.1
	if _, err := s.Run(); err == nil {
		t.Error("negative jitter accepted")
	}
}

// TestEnginePoolBudget exercises the byte-bounded free list directly.
func TestEnginePoolBudget(t *testing.T) {
	p := NewEnginePool(0)
	e := p.Get()
	if _, misses, _ := p.Stats(); misses != 1 {
		t.Fatal("fresh pool should miss")
	}
	p.Put(e)
	if _, _, discards := p.Stats(); discards != 1 {
		t.Fatal("zero-budget pool should discard")
	}
	if p.PooledBytes() != 0 {
		t.Fatal("zero-budget pool retained bytes")
	}

	p = NewEnginePool(1 << 20)
	e = p.Get()
	set, err := model.NewMulticastSet(1,
		model.Node{Send: 1, Recv: 1}, model.Node{Send: 2, Recv: 2}, model.Node{Send: 3, Recv: 4})
	if err != nil {
		t.Fatal(err)
	}
	sch := model.NewSchedule(set)
	sch.MustAddChild(0, 1)
	sch.MustAddChild(1, 2)
	e.Attach(sch, 8)
	sz := e.MemBytes()
	if sz <= 0 {
		t.Fatal("attached engine reports no footprint")
	}
	p.Put(e)
	if got := p.PooledBytes(); got != sz {
		t.Fatalf("pooled bytes %d, want %d", got, sz)
	}
	if got := p.Get(); got != e {
		t.Fatal("pool did not return the retained engine")
	}
	if p.PooledBytes() != 0 {
		t.Fatal("bytes not released on Get")
	}
	hits, _, _ := p.Stats()
	if hits != 1 {
		t.Fatalf("hits = %d, want 1", hits)
	}
}
