// Package batch evaluates many multicast instances across many schedulers
// in parallel. It is the compute engine for large parameter sweeps: a
// fixed-size worker pool of goroutines drains an index channel and writes
// into pre-sized result slots, so output is deterministic regardless of
// the degree of parallelism.
package batch

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/model"
	"repro/internal/stats"
)

// maxForEachChunk caps the number of consecutive indices a worker claims
// per atomic fetch. The chunk scales down with n so that coarse-grained
// jobs (e.g. sweep trials) still spread across every worker, and up to
// this cap so that fine-grained jobs (e.g. DP states) amortize the atomic.
const maxForEachChunk = 64

// ForEach invokes fn(worker, i) for every i in [0, n), distributing the
// indices over up to workers goroutines (0 selects GOMAXPROCS). worker is
// a stable 0-based identifier of the calling goroutine, so fn can index
// per-worker scratch without locking. Indices are handed out in chunks via
// an atomic cursor; every index is processed exactly once. ForEach returns
// after all calls complete. With workers <= 1 (or n == 1) it degenerates
// to a plain loop on the calling goroutine with worker = 0.
func ForEach(workers, n int, fn func(worker, i int)) {
	if n <= 0 {
		return
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers == 1 {
		for i := 0; i < n; i++ {
			fn(0, i)
		}
		return
	}
	// Aim for ~8 chunks per worker so stragglers rebalance.
	chunk := int64(n / (workers * 8))
	if chunk < 1 {
		chunk = 1
	}
	if chunk > maxForEachChunk {
		chunk = maxForEachChunk
	}
	var cursor atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			for {
				start := cursor.Add(chunk) - chunk
				if start >= int64(n) {
					return
				}
				end := start + chunk
				if end > int64(n) {
					end = int64(n)
				}
				for i := start; i < end; i++ {
					fn(worker, int(i))
				}
			}
		}(w)
	}
	wg.Wait()
}

// Result is the evaluation of one instance by every scheduler.
type Result struct {
	// Index is the instance's position in the sweep.
	Index int
	// RT maps scheduler name to reception completion time.
	RT map[string]int64
	// Err records a generation or scheduling failure; other fields are
	// zero when set.
	Err error
}

// Sweep describes a parallel experiment: Trials instances produced by Gen
// and evaluated by every scheduler.
type Sweep struct {
	// Gen builds the i-th instance. It must be safe for concurrent calls
	// with distinct i (pure functions of i, e.g. seeded generators, are).
	Gen func(i int) (*model.MulticastSet, error)
	// Schedulers are applied to every instance. Implementations must be
	// safe for concurrent use (all schedulers in this repository are:
	// they keep no mutable state across calls).
	Schedulers []model.Scheduler
	// Trials is the number of instances.
	Trials int
	// Workers caps the worker pool; 0 means GOMAXPROCS.
	Workers int
}

// Run executes the sweep and returns one Result per trial, in trial
// order. Individual failures are reported in Result.Err; Run itself only
// fails on configuration errors.
func (s Sweep) Run() ([]Result, error) {
	if s.Gen == nil {
		return nil, fmt.Errorf("batch: Gen is nil")
	}
	if s.Trials < 0 {
		return nil, fmt.Errorf("batch: negative trials")
	}
	if len(s.Schedulers) == 0 {
		return nil, fmt.Errorf("batch: no schedulers")
	}
	names := map[string]bool{}
	for _, sc := range s.Schedulers {
		if names[sc.Name()] {
			return nil, fmt.Errorf("batch: duplicate scheduler name %q", sc.Name())
		}
		names[sc.Name()] = true
	}
	results := make([]Result, s.Trials)
	ForEach(s.Workers, s.Trials, func(_, i int) {
		results[i] = s.evalOne(i)
	})
	return results, nil
}

func (s Sweep) evalOne(i int) Result {
	set, err := s.Gen(i)
	if err != nil {
		return Result{Index: i, Err: fmt.Errorf("batch: gen(%d): %w", i, err)}
	}
	rt := make(map[string]int64, len(s.Schedulers))
	for _, sc := range s.Schedulers {
		sch, err := sc.Schedule(set)
		if err != nil {
			return Result{Index: i, Err: fmt.Errorf("batch: %s on instance %d: %w", sc.Name(), i, err)}
		}
		rt[sc.Name()] = model.RT(sch)
	}
	return Result{Index: i, RT: rt}
}

// Aggregate summarizes one scheduler's completion times across the sweep,
// skipping failed trials.
func Aggregate(results []Result, scheduler string) stats.Summary {
	var xs []float64
	for _, r := range results {
		if r.Err != nil {
			continue
		}
		if v, ok := r.RT[scheduler]; ok {
			xs = append(xs, float64(v))
		}
	}
	return stats.Summarize(xs)
}

// WinCounts returns, per scheduler, how many trials it (weakly) won.
func WinCounts(results []Result) map[string]int {
	wins := map[string]int{}
	for _, r := range results {
		if r.Err != nil {
			continue
		}
		best := int64(-1)
		for _, v := range r.RT {
			if best == -1 || v < best {
				best = v
			}
		}
		for name, v := range r.RT {
			if v == best {
				wins[name]++
			}
		}
	}
	return wins
}

// FirstError returns the first trial error, or nil.
func FirstError(results []Result) error {
	for _, r := range results {
		if r.Err != nil {
			return r.Err
		}
	}
	return nil
}
