// Package batch evaluates many multicast instances across many schedulers
// in parallel. It is the compute engine for large parameter sweeps: a
// fixed-size worker pool of goroutines drains an index channel and writes
// into pre-sized result slots, so output is deterministic regardless of
// the degree of parallelism.
package batch

import (
	"fmt"
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/model"
	"repro/internal/stats"
)

// maxForEachChunk caps the number of consecutive indices a worker claims
// per atomic fetch. The chunk scales down with n so that coarse-grained
// jobs (e.g. sweep trials) still spread across every worker, and up to
// this cap so that fine-grained jobs (e.g. DP states) amortize the atomic.
const maxForEachChunk = 64

// Chunk returns the number of consecutive indices one worker should
// claim per atomic fetch when n items are drained by workers goroutines
// through a shared cursor: ~8 chunks per worker so stragglers rebalance,
// clamped to [1, 64] so fine-grained items still amortize the atomic.
// ForEach uses it internally; exported for pools that manage their own
// cursor (e.g. the exact DP's persistent layer-fill pool).
func Chunk(n, workers int) int64 {
	chunk := int64(n / (workers * 8))
	if chunk < 1 {
		chunk = 1
	}
	if chunk > maxForEachChunk {
		chunk = maxForEachChunk
	}
	return chunk
}

// ForEach invokes fn(worker, i) for every i in [0, n), distributing the
// indices over up to workers goroutines (0 selects GOMAXPROCS). worker is
// a stable 0-based identifier of the calling goroutine, so fn can index
// per-worker scratch without locking. Indices are handed out in chunks via
// an atomic cursor; every index is processed exactly once. ForEach returns
// after all calls complete. With workers <= 1 (or n == 1) it degenerates
// to a plain loop on the calling goroutine with worker = 0.
func ForEach(workers, n int, fn func(worker, i int)) {
	if n <= 0 {
		return
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers == 1 {
		for i := 0; i < n; i++ {
			fn(0, i)
		}
		return
	}
	chunk := Chunk(n, workers)
	var cursor atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			for {
				start := cursor.Add(chunk) - chunk
				if start >= int64(n) {
					return
				}
				end := start + chunk
				if end > int64(n) {
					end = int64(n)
				}
				for i := start; i < end; i++ {
					fn(worker, int(i))
				}
			}
		}(w)
	}
	wg.Wait()
}

// Result is the evaluation of one instance by every scheduler.
type Result struct {
	// Index is the instance's position in the sweep.
	Index int
	// RT maps scheduler name to reception completion time.
	RT map[string]int64
	// JitterRT maps scheduler name to its mean reception completion time
	// across the sweep's perturbed cost draws. Nil unless Sweep.Perturbed
	// is positive.
	JitterRT map[string]float64
	// Err records a generation or scheduling failure; other fields are
	// zero when set.
	Err error
}

// Sweep describes a parallel experiment: Trials instances produced by Gen
// and evaluated by every scheduler, optionally rescored under drawn cost
// jitter to measure robustness of the fixed trees.
type Sweep struct {
	// Gen builds the i-th instance. It must be safe for concurrent calls
	// with distinct i (pure functions of i, e.g. seeded generators, are).
	Gen func(i int) (*model.MulticastSet, error)
	// Schedulers are applied to every instance. Implementations must be
	// safe for concurrent use (all schedulers in this repository are:
	// they keep no mutable state across calls).
	Schedulers []model.Scheduler
	// Model, when non-nil and not the base model, scores every schedule
	// under this cost model: each scheduler's tree is bound to the model
	// before evaluation (schedulers from registry.SchedulersFor already
	// optimize for it; structural schedulers are scored as-is). Perturbed
	// rescoring is base-model only.
	Model model.CostModel
	// GenModel, when set, supplies instance i's cost model alongside the
	// instance itself — e.g. the latency matrix of a generated WAN topology,
	// which differs per trial. It must be safe for concurrent calls with
	// distinct i and may return a nil model for the base objective.
	// Mutually exclusive with Model; Perturbed rescoring is unsupported.
	GenModel func(i int, set *model.MulticastSet) (model.CostModel, error)
	// SchedulersFor, when set (requires GenModel), builds the scheduler
	// list for one instance's model — e.g. registry.SchedulersFor, so the
	// searches optimize that instance's matrix. The returned schedulers
	// must keep the names of the Schedulers field, which still defines the
	// sweep's name set for aggregation. Nil falls back to Schedulers with
	// the model bound for scoring only.
	SchedulersFor func(cm model.CostModel) ([]model.Scheduler, error)
	// Trials is the number of instances.
	Trials int
	// Workers caps the worker pool; 0 means GOMAXPROCS.
	Workers int

	// Perturbed, when positive, additionally scores every scheduler's
	// tree under this many perturbed cost draws per instance and reports
	// the mean in Result.JitterRT. Draws use common random numbers: all
	// schedulers of one instance see the same cost vectors, so their
	// JitterRT values are directly comparable.
	Perturbed int
	// Jitter is the uniform perturbation amplitude: each cost is scaled
	// by an independent factor in [1-Jitter, 1+Jitter], clamped to at
	// least one time unit. Must be in [0, 1) when Perturbed is positive.
	Jitter float64
	// JitterSeed seeds the draws; instance i uses JitterSeed+i, so the
	// sweep is deterministic regardless of parallelism.
	JitterSeed int64
}

// sweepLanes is the batch width of the perturbed rescoring pass: chunks
// of this many draws share one BatchEngine attachment.
const sweepLanes = 64

// sweepScratch is one worker's reusable evaluation state: the flat
// engine that replaces per-call ComputeTimes allocation for nominal
// scoring, and (for perturbed sweeps) a pooled batch engine plus drawn
// cost vectors. Indexed by the stable ForEach worker id, so no locking.
type sweepScratch struct {
	eng   model.Engine
	be    *model.BatchEngine // lazily from Engines, returned after the sweep
	schs  []*model.Schedule
	draws [][3][]int64 // per lane: send, recv, latency vectors
	costs [3][][]int64 // the same draws regrouped per kind for SetLanes
	sums  []float64
}

// Run executes the sweep and returns one Result per trial, in trial
// order. Individual failures are reported in Result.Err; Run itself only
// fails on configuration errors.
func (s Sweep) Run() ([]Result, error) {
	if s.Gen == nil {
		return nil, fmt.Errorf("batch: Gen is nil")
	}
	if s.Trials < 0 {
		return nil, fmt.Errorf("batch: negative trials")
	}
	if len(s.Schedulers) == 0 {
		return nil, fmt.Errorf("batch: no schedulers")
	}
	if s.Perturbed < 0 {
		return nil, fmt.Errorf("batch: negative perturbed draw count")
	}
	if s.Perturbed > 0 && (s.Jitter < 0 || s.Jitter >= 1) {
		return nil, fmt.Errorf("batch: jitter amplitude %v outside [0, 1)", s.Jitter)
	}
	if s.Perturbed > 0 && !model.IsBase(s.Model) {
		return nil, fmt.Errorf("batch: perturbed rescoring supports the base model only, not %q", s.Model.Name())
	}
	if s.GenModel != nil {
		if !model.IsBase(s.Model) {
			return nil, fmt.Errorf("batch: Model and GenModel are mutually exclusive")
		}
		if s.Perturbed > 0 {
			return nil, fmt.Errorf("batch: perturbed rescoring supports the base model only")
		}
	} else if s.SchedulersFor != nil {
		return nil, fmt.Errorf("batch: SchedulersFor requires GenModel")
	}
	names := map[string]bool{}
	for _, sc := range s.Schedulers {
		if names[sc.Name()] {
			return nil, fmt.Errorf("batch: duplicate scheduler name %q", sc.Name())
		}
		names[sc.Name()] = true
	}
	workers := s.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > s.Trials {
		workers = s.Trials
	}
	scratch := make([]sweepScratch, max(workers, 1))
	results := make([]Result, s.Trials)
	ForEach(workers, s.Trials, func(w, i int) {
		results[i] = s.evalOne(&scratch[w], i)
	})
	for w := range scratch {
		if scratch[w].be != nil {
			Engines.Put(scratch[w].be)
			scratch[w].be = nil
		}
	}
	return results, nil
}

func (s Sweep) evalOne(sc *sweepScratch, i int) Result {
	set, err := s.Gen(i)
	if err != nil {
		return Result{Index: i, Err: fmt.Errorf("batch: gen(%d): %w", i, err)}
	}
	cm := s.Model
	scheds := s.Schedulers
	if s.GenModel != nil {
		if cm, err = s.GenModel(i, set); err != nil {
			return Result{Index: i, Err: fmt.Errorf("batch: genmodel(%d): %w", i, err)}
		}
		if s.SchedulersFor != nil {
			if scheds, err = s.SchedulersFor(cm); err != nil {
				return Result{Index: i, Err: fmt.Errorf("batch: schedulers for instance %d: %w", i, err)}
			}
		}
	}
	rt := make(map[string]int64, len(scheds))
	sc.schs = sc.schs[:0]
	for _, schd := range scheds {
		sch, err := schd.Schedule(set)
		if err != nil {
			return Result{Index: i, Err: fmt.Errorf("batch: %s on instance %d: %w", schd.Name(), i, err)}
		}
		if !model.IsBase(cm) {
			sch.BindModel(cm)
		}
		sc.eng.Attach(sch)
		rt[schd.Name()] = sc.eng.RT()
		sc.schs = append(sc.schs, sch)
	}
	res := Result{Index: i, RT: rt}
	if s.Perturbed > 0 {
		res.JitterRT = s.rescorePerturbed(sc, i)
	}
	return res
}

// rescorePerturbed scores instance i's schedules under s.Perturbed drawn
// cost vectors in batched chunks, returning per-scheduler means. Each
// chunk is drawn once and applied to every scheduler (common random
// numbers), and each draw perturbs every node's send, receive and
// latency cost independently — nodes in id order, send then recv then
// latency, mirroring sim.Trials' canonical draw order.
func (s Sweep) rescorePerturbed(sc *sweepScratch, i int) map[string]float64 {
	n := len(sc.schs[0].Set.Nodes)
	set := sc.schs[0].Set
	if sc.be == nil {
		sc.be = Engines.Get()
	}
	if cap(sc.sums) < len(sc.schs) {
		sc.sums = make([]float64, len(sc.schs))
	}
	sums := sc.sums[:len(sc.schs)]
	for k := range sums {
		sums[k] = 0
	}
	rng := rand.New(rand.NewSource(s.JitterSeed + int64(i)))
	for lo := 0; lo < s.Perturbed; lo += sweepLanes {
		lanes := min(sweepLanes, s.Perturbed-lo)
		for len(sc.draws) < lanes {
			sc.draws = append(sc.draws, [3][]int64{})
		}
		for b := 0; b < lanes; b++ {
			d := &sc.draws[b]
			for c := range d {
				if cap(d[c]) < n {
					d[c] = make([]int64, n)
				}
				d[c] = d[c][:n]
			}
			for v := 0; v < n; v++ {
				d[0][v] = jitterCost(rng, s.Jitter, set.Nodes[v].Send)
				d[1][v] = jitterCost(rng, s.Jitter, set.Nodes[v].Recv)
				d[2][v] = jitterCost(rng, s.Jitter, set.Latency)
			}
		}
		for c := range sc.costs {
			if cap(sc.costs[c]) < lanes {
				sc.costs[c] = make([][]int64, lanes)
			}
			sc.costs[c] = sc.costs[c][:lanes]
		}
		for b := 0; b < lanes; b++ {
			sc.costs[0][b] = sc.draws[b][0]
			sc.costs[1][b] = sc.draws[b][1]
			sc.costs[2][b] = sc.draws[b][2]
		}
		for k, sch := range sc.schs {
			sc.be.Attach(sch, lanes)
			sc.be.SetLanes(sc.costs[0], sc.costs[1], sc.costs[2])
			sc.be.EvalAll()
			for _, v := range sc.be.RTs() {
				sums[k] += float64(v)
			}
		}
	}
	out := make(map[string]float64, len(s.Schedulers))
	for k, schd := range s.Schedulers {
		out[schd.Name()] = sums[k] / float64(s.Perturbed)
	}
	return out
}

// jitterCost scales base by a uniform factor in [1-amp, 1+amp], clamped
// to at least one time unit — the same draw sim.UniformJitter makes,
// reimplemented here because package sim builds on this one.
func jitterCost(rng *rand.Rand, amp float64, base int64) int64 {
	f := 1 - amp + 2*amp*rng.Float64()
	v := int64(float64(base) * f)
	if v < 1 {
		v = 1
	}
	return v
}

// Aggregate summarizes one scheduler's completion times across the sweep,
// skipping failed trials.
func Aggregate(results []Result, scheduler string) stats.Summary {
	var xs []float64
	for _, r := range results {
		if r.Err != nil {
			continue
		}
		if v, ok := r.RT[scheduler]; ok {
			xs = append(xs, float64(v))
		}
	}
	return stats.Summarize(xs)
}

// AggregateJitter summarizes one scheduler's mean perturbed completion
// times across the sweep, skipping failed trials. The summary is empty
// unless the sweep ran with Perturbed > 0.
func AggregateJitter(results []Result, scheduler string) stats.Summary {
	var xs []float64
	for _, r := range results {
		if r.Err != nil {
			continue
		}
		if v, ok := r.JitterRT[scheduler]; ok {
			xs = append(xs, v)
		}
	}
	return stats.Summarize(xs)
}

// WinCounts returns, per scheduler, how many trials it (weakly) won.
func WinCounts(results []Result) map[string]int {
	wins := map[string]int{}
	for _, r := range results {
		if r.Err != nil {
			continue
		}
		best := int64(-1)
		for _, v := range r.RT {
			if best == -1 || v < best {
				best = v
			}
		}
		for name, v := range r.RT {
			if v == best {
				wins[name]++
			}
		}
	}
	return wins
}

// FirstError returns the first trial error, or nil.
func FirstError(results []Result) error {
	for _, r := range results {
		if r.Err != nil {
			return r.Err
		}
	}
	return nil
}
