package batch

import (
	"expvar"
	"sync"

	"repro/internal/model"
)

// EnginePool is a free list of BatchEngines bounded by retained bytes
// rather than entry count — batch engines attached to large instances
// with wide lane counts hold tens of megabytes of flat rows, so an
// unbounded sync.Pool-style cache would quietly pin the high-water mark
// of the largest sweep ever run. Put discards engines that would push the
// pooled footprint past MaxBytes, so idle retention is capped while the
// steady-state hot path (a sweep's workers cycling similarly-sized
// engines) still reuses warm buffers.
//
// The zero value is a valid pool that retains nothing; use NewEnginePool
// for a bounded cache. All methods are safe for concurrent use.
type EnginePool struct {
	// MaxBytes caps the total MemBytes of idle engines retained across
	// Put calls. 0 retains nothing.
	MaxBytes int64

	mu    sync.Mutex
	free  []*model.BatchEngine
	bytes int64 // sum of MemBytes over free

	hits, misses, discards int64
}

// NewEnginePool returns a pool retaining at most maxBytes of idle engine
// buffers.
func NewEnginePool(maxBytes int64) *EnginePool {
	return &EnginePool{MaxBytes: maxBytes}
}

// Get returns an idle engine (most recently returned first, for warm
// buffers) or a fresh zero-value engine when the pool is empty.
func (p *EnginePool) Get() *model.BatchEngine {
	p.mu.Lock()
	defer p.mu.Unlock()
	if n := len(p.free); n > 0 {
		e := p.free[n-1]
		p.free[n-1] = nil
		p.free = p.free[:n-1]
		p.bytes -= e.MemBytes()
		p.hits++
		return e
	}
	p.misses++
	return new(model.BatchEngine)
}

// Put returns an engine to the pool, discarding it instead when its
// buffers would push the retained footprint past MaxBytes. Callers must
// not use e after Put.
func (p *EnginePool) Put(e *model.BatchEngine) {
	if e == nil {
		return
	}
	sz := e.MemBytes()
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.MaxBytes <= 0 || p.bytes+sz > p.MaxBytes {
		p.discards++
		return
	}
	p.free = append(p.free, e)
	p.bytes += sz
}

// PooledBytes reports the retained footprint of idle engines.
func (p *EnginePool) PooledBytes() int64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.bytes
}

// Stats reports lifetime counters: Get calls served from the pool (hits)
// or freshly allocated (misses), and Put calls dropped by the byte budget
// (discards).
func (p *EnginePool) Stats() (hits, misses, discards int64) {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.hits, p.misses, p.discards
}

// defaultEnginePoolBytes bounds the process-wide shared pool: enough for
// a few dozen sweep workers' engines at production instance sizes, small
// next to the table store's own budgets.
const defaultEnginePoolBytes = 64 << 20

// Engines is the process-wide shared pool used by the sweep executor and
// sim.Trials. Its gauges are published under expvar keys
// batch.engines_pooled_bytes, batch.engines_pool_hits,
// batch.engines_pool_misses and batch.engines_pool_discards.
var Engines = NewEnginePool(defaultEnginePoolBytes)

func init() {
	expvar.Publish("batch.engines_pooled_bytes", expvar.Func(func() any {
		return Engines.PooledBytes()
	}))
	expvar.Publish("batch.engines_pool_hits", expvar.Func(func() any {
		h, _, _ := Engines.Stats()
		return h
	}))
	expvar.Publish("batch.engines_pool_misses", expvar.Func(func() any {
		_, m, _ := Engines.Stats()
		return m
	}))
	expvar.Publish("batch.engines_pool_discards", expvar.Func(func() any {
		_, _, d := Engines.Stats()
		return d
	}))
}
