package batch

import (
	"errors"
	"fmt"
	"reflect"
	"testing"

	"repro/internal/baselines"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/model"
)

func testSweep(workers int) Sweep {
	return Sweep{
		Gen: func(i int) (*model.MulticastSet, error) {
			return cluster.Generate(cluster.GenConfig{N: 5 + i%20, K: 3, Seed: int64(i)})
		},
		Schedulers: append([]model.Scheduler{core.Greedy{Reversal: true}}, baselines.All(9)...),
		Trials:     40,
		Workers:    workers,
	}
}

func TestRunDeterministicAcrossWorkerCounts(t *testing.T) {
	serial, err := testSweep(1).Run()
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := testSweep(8).Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(serial) != len(parallel) {
		t.Fatalf("lengths differ: %d vs %d", len(serial), len(parallel))
	}
	for i := range serial {
		if serial[i].Err != nil || parallel[i].Err != nil {
			t.Fatalf("trial %d errored: %v / %v", i, serial[i].Err, parallel[i].Err)
		}
		if !reflect.DeepEqual(serial[i].RT, parallel[i].RT) {
			t.Fatalf("trial %d differs between 1 and 8 workers:\n%v\n%v", i, serial[i].RT, parallel[i].RT)
		}
	}
}

func TestRunOrderedResults(t *testing.T) {
	res, err := testSweep(4).Run()
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range res {
		if r.Index != i {
			t.Fatalf("result %d has index %d", i, r.Index)
		}
	}
}

func TestConfigurationErrors(t *testing.T) {
	if _, err := (Sweep{Trials: 1, Schedulers: []model.Scheduler{core.Greedy{}}}).Run(); err == nil {
		t.Error("nil Gen accepted")
	}
	gen := func(i int) (*model.MulticastSet, error) {
		return cluster.Generate(cluster.GenConfig{N: 3, K: 1, Seed: int64(i)})
	}
	if _, err := (Sweep{Gen: gen, Trials: -1, Schedulers: []model.Scheduler{core.Greedy{}}}).Run(); err == nil {
		t.Error("negative trials accepted")
	}
	if _, err := (Sweep{Gen: gen, Trials: 1}).Run(); err == nil {
		t.Error("no schedulers accepted")
	}
	dup := Sweep{Gen: gen, Trials: 1, Schedulers: []model.Scheduler{core.Greedy{}, core.Greedy{}}}
	if _, err := dup.Run(); err == nil {
		t.Error("duplicate scheduler names accepted")
	}
}

func TestTrialErrorsReported(t *testing.T) {
	boom := errors.New("boom")
	s := Sweep{
		Gen: func(i int) (*model.MulticastSet, error) {
			if i == 3 {
				return nil, boom
			}
			return cluster.Generate(cluster.GenConfig{N: 4, K: 2, Seed: int64(i)})
		},
		Schedulers: []model.Scheduler{core.Greedy{}},
		Trials:     6,
		Workers:    2,
	}
	res, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res[3].Err == nil || !errors.Is(res[3].Err, boom) {
		t.Errorf("trial 3 error = %v", res[3].Err)
	}
	if got := FirstError(res); !errors.Is(got, boom) {
		t.Errorf("FirstError = %v", got)
	}
	for i, r := range res {
		if i != 3 && r.Err != nil {
			t.Errorf("trial %d unexpectedly errored: %v", i, r.Err)
		}
	}
}

func TestAggregateAndWinCounts(t *testing.T) {
	res, err := testSweep(0).Run()
	if err != nil {
		t.Fatal(err)
	}
	g := Aggregate(res, "greedy+leafrev")
	if g.N != 40 {
		t.Fatalf("aggregate N = %d, want 40", g.N)
	}
	star := Aggregate(res, "star")
	if g.Mean >= star.Mean {
		t.Errorf("greedy mean %f not better than star %f", g.Mean, star.Mean)
	}
	wins := WinCounts(res)
	total := 0
	for _, w := range wins {
		total += w
	}
	if total < 40 {
		t.Errorf("win counts sum %d below trials", total)
	}
	if wins["greedy+leafrev"] < 30 {
		t.Errorf("greedy won only %d/40 trials", wins["greedy+leafrev"])
	}
	if Aggregate(res, "no-such-scheduler").N != 0 {
		t.Error("aggregate of unknown scheduler not empty")
	}
}

func TestZeroTrials(t *testing.T) {
	s := testSweep(2)
	s.Trials = 0
	res, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 0 {
		t.Errorf("expected empty results, got %d", len(res))
	}
}

func BenchmarkSweepParallel(b *testing.B) {
	for _, workers := range []int{1, 4} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			s := testSweep(workers)
			s.Trials = 16
			for i := 0; i < b.N; i++ {
				if _, err := s.Run(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
