package core

import (
	"math/rand"
	"testing"

	"repro/internal/model"
)

// figure1Set is the Figure 1 instance: slow source (2,3), three fast
// destinations (1,1), one slow destination (2,3), latency 1.
func figure1Set(t *testing.T) *model.MulticastSet {
	t.Helper()
	fast := model.Node{Send: 1, Recv: 1, Name: "fast"}
	slow := model.Node{Send: 2, Recv: 3, Name: "slow"}
	s, err := model.NewMulticastSet(1, slow, fast, fast, fast, slow)
	if err != nil {
		t.Fatalf("figure1Set: %v", err)
	}
	return s
}

// randSet builds a random valid multicast set with n destinations. To keep
// overheads correlated it draws a per-node speed class and derives both
// overheads from it.
func randSet(rng *rand.Rand, n int) *model.MulticastSet {
	nodes := make([]model.Node, n+1)
	for i := range nodes {
		speed := int64(1 + rng.Intn(8))
		nodes[i] = model.Node{Send: speed, Recv: speed + int64(rng.Intn(3))*speed/2}
		if nodes[i].Recv < nodes[i].Send {
			nodes[i].Recv = nodes[i].Send
		}
	}
	// Force correlation: sort-derived mapping. Simplest: make recv a fixed
	// function of send.
	for i := range nodes {
		nodes[i].Recv = nodes[i].Send + nodes[i].Send/2 + 1
	}
	set := &model.MulticastSet{Latency: int64(1 + rng.Intn(4)), Nodes: nodes}
	if err := set.Validate(); err != nil {
		panic(err)
	}
	return set
}

func TestGreedyFigure1(t *testing.T) {
	set := figure1Set(t)
	sch, err := Schedule(set)
	if err != nil {
		t.Fatalf("Schedule: %v", err)
	}
	if err := sch.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if !model.IsLayered(sch) {
		t.Error("greedy schedule not layered")
	}
	rt := model.RT(sch)
	// Greedy delivers fast nodes first; its schedule on this instance
	// completes at time 10 (the slow destination gets the last slot at
	// delivery 7, reception 10), matching Figure 1(a)'s completion time.
	if rt != 10 {
		t.Errorf("greedy RT = %d, want 10", rt)
	}
	// With the paper's leaf-reversal post-pass the slow leaf takes the
	// earliest leaf slot (delivery 5) and the completion drops to 8 --
	// better than both schedules shown in Figure 1.
	rev, err := ScheduleWithReversal(set)
	if err != nil {
		t.Fatalf("ScheduleWithReversal: %v", err)
	}
	if err := rev.Validate(); err != nil {
		t.Fatalf("Validate reversed: %v", err)
	}
	if got := model.RT(rev); got != 8 {
		t.Errorf("greedy+reversal RT = %d, want 8", got)
	}
}

func TestGreedyDeliveryTimesMonotone(t *testing.T) {
	// In a layered greedy schedule, destinations inserted later never have
	// earlier delivery times.
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		set := randSet(rng, 1+rng.Intn(40))
		sch, err := Schedule(set)
		if err != nil {
			t.Fatalf("Schedule: %v", err)
		}
		tm := model.ComputeTimes(sch)
		order := set.SortedDestinations()
		for i := 1; i < len(order); i++ {
			if tm.Delivery[order[i]] < tm.Delivery[order[i-1]] {
				t.Fatalf("trial %d: delivery times not monotone along insertion order: d(%d)=%d after d(%d)=%d",
					trial, order[i], tm.Delivery[order[i]], order[i-1], tm.Delivery[order[i-1]])
			}
		}
		if !model.IsLayered(sch) {
			t.Fatalf("trial %d: greedy schedule not layered", trial)
		}
	}
}

func TestNaiveMatchesPriorityQueue(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 100; trial++ {
		set := randSet(rng, 1+rng.Intn(60))
		fast, err := Schedule(set)
		if err != nil {
			t.Fatalf("Schedule: %v", err)
		}
		naive, err := NaiveSchedule(set)
		if err != nil {
			t.Fatalf("NaiveSchedule: %v", err)
		}
		ft, nt := model.ComputeTimes(fast), model.ComputeTimes(naive)
		if ft.DT != nt.DT || ft.RT != nt.RT {
			t.Fatalf("trial %d: pq greedy (DT=%d RT=%d) != naive greedy (DT=%d RT=%d)\nset: %+v",
				trial, ft.DT, ft.RT, nt.DT, nt.RT, set)
		}
	}
}

func TestScheduleOrderValidation(t *testing.T) {
	set := figure1Set(t)
	if _, err := ScheduleOrder(set, []model.NodeID{1, 2, 3}); err == nil {
		t.Error("short order accepted")
	}
	if _, err := ScheduleOrder(set, []model.NodeID{1, 2, 3, 3}); err == nil {
		t.Error("duplicate order accepted")
	}
	if _, err := ScheduleOrder(set, []model.NodeID{0, 1, 2, 3}); err == nil {
		t.Error("order containing the source accepted")
	}
	if _, err := ScheduleOrder(set, []model.NodeID{1, 2, 3, 9}); err == nil {
		t.Error("out-of-range order accepted")
	}
}

func TestScheduleOrderArbitraryOrderStillValid(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 30; trial++ {
		set := randSet(rng, 2+rng.Intn(20))
		order := set.SortedDestinations()
		rng.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
		sch, err := ScheduleOrder(set, order)
		if err != nil {
			t.Fatalf("ScheduleOrder: %v", err)
		}
		if err := sch.Validate(); err != nil {
			t.Fatalf("Validate: %v", err)
		}
	}
}

func TestSortedOrderNeverWorseThanRandomOrder(t *testing.T) {
	// Lemma 2 implies sorted insertion minimizes DT among layered
	// schedules; empirically it should (weakly) dominate shuffled
	// insertion on DT in the vast majority of cases. We assert the sorted
	// order wins on average, which is the ablation's point.
	rng := rand.New(rand.NewSource(5))
	var sortedTotal, shuffledTotal int64
	for trial := 0; trial < 200; trial++ {
		set := randSet(rng, 2+rng.Intn(30))
		sorted, err := Schedule(set)
		if err != nil {
			t.Fatalf("Schedule: %v", err)
		}
		order := set.SortedDestinations()
		rng.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
		shuffled, err := ScheduleOrder(set, order)
		if err != nil {
			t.Fatalf("ScheduleOrder: %v", err)
		}
		sortedTotal += model.DT(sorted)
		shuffledTotal += model.DT(shuffled)
	}
	if sortedTotal > shuffledTotal {
		t.Errorf("sorted insertion total DT %d worse than shuffled %d", sortedTotal, shuffledTotal)
	}
}

func TestReverseLeavesNeverIncreasesRT(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 200; trial++ {
		set := randSet(rng, 1+rng.Intn(50))
		sch, err := Schedule(set)
		if err != nil {
			t.Fatalf("Schedule: %v", err)
		}
		before := model.RT(sch)
		rev, err := ReverseLeaves(sch)
		if err != nil {
			t.Fatalf("ReverseLeaves: %v", err)
		}
		if err := rev.Validate(); err != nil {
			t.Fatalf("Validate after reversal: %v", err)
		}
		after := model.RT(rev)
		if after > before {
			t.Fatalf("trial %d: reversal increased RT from %d to %d", trial, before, after)
		}
		// Reversal must not change any delivery slot, only occupants:
		// delivery times as a multiset are invariant.
		if model.DT(rev) != model.DT(sch) {
			t.Fatalf("trial %d: reversal changed DT", trial)
		}
	}
}

func TestReverseLeavesPreservesInternalNodes(t *testing.T) {
	set := figure1Set(t)
	sch, err := Schedule(set)
	if err != nil {
		t.Fatalf("Schedule: %v", err)
	}
	internalBefore := map[model.NodeID]bool{}
	for v := 0; v < len(set.Nodes); v++ {
		if !sch.IsLeaf(v) {
			internalBefore[v] = true
		}
	}
	rev, err := ReverseLeaves(sch)
	if err != nil {
		t.Fatalf("ReverseLeaves: %v", err)
	}
	for v := range internalBefore {
		if rev.IsLeaf(v) {
			t.Errorf("internal node %d became a leaf after reversal", v)
		}
	}
}

func TestGreedySingleDestination(t *testing.T) {
	set, err := model.NewMulticastSet(2, model.Node{Send: 3, Recv: 4}, model.Node{Send: 1, Recv: 1})
	if err != nil {
		t.Fatalf("NewMulticastSet: %v", err)
	}
	sch, err := ScheduleWithReversal(set)
	if err != nil {
		t.Fatalf("Schedule: %v", err)
	}
	// d = 3 + 2 = 5, r = 6.
	if got := model.RT(sch); got != 6 {
		t.Errorf("RT = %d, want 6", got)
	}
}

func TestGreedyZeroDestinations(t *testing.T) {
	set, err := model.NewMulticastSet(1, model.Node{Send: 1, Recv: 1})
	if err != nil {
		t.Fatalf("NewMulticastSet: %v", err)
	}
	sch, err := ScheduleWithReversal(set)
	if err != nil {
		t.Fatalf("Schedule: %v", err)
	}
	if got := model.RT(sch); got != 0 {
		t.Errorf("RT = %d, want 0", got)
	}
}

func TestSchedulerInterface(t *testing.T) {
	set := figure1Set(t)
	for _, s := range []model.Scheduler{Greedy{}, Greedy{Reversal: true}} {
		sch, err := s.Schedule(set)
		if err != nil {
			t.Fatalf("%s: %v", s.Name(), err)
		}
		if err := sch.Validate(); err != nil {
			t.Fatalf("%s: %v", s.Name(), err)
		}
	}
	if (Greedy{}).Name() == (Greedy{Reversal: true}).Name() {
		t.Error("scheduler names must be distinct")
	}
}

func BenchmarkGreedy1k(b *testing.B)  { benchGreedy(b, 1000) }
func BenchmarkGreedy32k(b *testing.B) { benchGreedy(b, 32000) }

func benchGreedy(b *testing.B, n int) {
	rng := rand.New(rand.NewSource(1))
	set := randSet(rng, n)
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Schedule(set); err != nil {
			b.Fatal(err)
		}
	}
}
