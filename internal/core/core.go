// Package core implements the paper's primary contribution: the greedy
// multicast scheduling algorithm for the heterogeneous receive-send model
// (Section 2, Lemma 1), the leaf-reversal post-pass (end of Section 3), and
// ablation variants used by the benchmark harness.
//
// The greedy algorithm sorts the destinations in non-decreasing order of
// overhead and repeatedly delivers the next destination at the earliest
// possible completion point, found with a priority queue keyed by each
// attached node's next delivery completion time. It runs in O(n log n) and
// always produces a layered schedule; Corollary 1 shows it minimizes the
// delivery completion time DT over all layered schedules, and Theorem 1
// bounds its reception completion time by 2*(amax/amin)*OPT_R + beta.
package core

import (
	"fmt"
	"sort"

	"repro/internal/model"
	"repro/internal/pqueue"
)

// Schedule runs the paper's greedy algorithm on the set and returns the
// resulting layered schedule. Destinations are inserted in non-decreasing
// order of overhead as the paper requires.
func Schedule(set *model.MulticastSet) (*model.Schedule, error) {
	return ScheduleOrder(set, set.SortedDestinations())
}

// ScheduleWithReversal runs the greedy algorithm followed by the
// leaf-reversal post-pass the paper recommends for practical use.
func ScheduleWithReversal(set *model.MulticastSet) (*model.Schedule, error) {
	sch, err := Schedule(set)
	if err != nil {
		return nil, err
	}
	return ReverseLeaves(sch)
}

// ScheduleOrder runs the greedy insertion loop with an explicit destination
// insertion order. Passing SortedDestinations gives the paper's algorithm;
// other orders are used by the insertion-order ablation (the resulting
// schedule is generally not layered and loses the Lemma 2 guarantee).
func ScheduleOrder(set *model.MulticastSet, order []model.NodeID) (*model.Schedule, error) {
	if len(order) != set.N() {
		return nil, fmt.Errorf("core: order has %d destinations, set has %d", len(order), set.N())
	}
	seen := make([]bool, len(set.Nodes))
	for _, v := range order {
		if v <= 0 || v >= len(set.Nodes) || seen[v] {
			return nil, fmt.Errorf("core: order is not a permutation of the destinations (offending id %d)", v)
		}
		seen[v] = true
	}
	sch := model.NewSchedule(set)
	L := set.Latency
	pq := pqueue.New(set.N() + 1)
	// The source can first complete a delivery at osend(p0) + L.
	pq.Push(0, set.Nodes[0].Send+L)
	for _, pi := range order {
		it, ok := pq.Pop()
		if !ok {
			return nil, fmt.Errorf("core: internal error: empty queue with destinations remaining")
		}
		p, c := it.Value, it.Key
		if err := sch.AddChild(p, pi); err != nil {
			return nil, err
		}
		// pi completes reception at c + orecv(pi) and can then complete
		// its own first delivery after osend(pi) + L.
		pq.Push(pi, c+set.Nodes[pi].Recv+set.Nodes[pi].Send+L)
		// p can complete its next delivery osend(p) later.
		pq.Push(p, c+set.Nodes[p].Send)
	}
	return sch, nil
}

// NaiveSchedule is an O(n^2) implementation of the same greedy rule that
// scans every attached node at each step instead of using a priority queue.
// It exists as the complexity ablation for Lemma 1; it produces a schedule
// with the same completion times as Schedule.
func NaiveSchedule(set *model.MulticastSet) (*model.Schedule, error) {
	sch := model.NewSchedule(set)
	L := set.Latency
	order := set.SortedDestinations()
	n := len(set.Nodes)
	attached := make([]bool, n)
	attached[0] = true
	reception := make([]int64, n) // r(v) for attached v
	sent := make([]int64, n)      // number of transmissions already scheduled
	for _, pi := range order {
		best, bestKey := -1, int64(0)
		for v := 0; v < n; v++ {
			if !attached[v] {
				continue
			}
			key := reception[v] + (sent[v]+1)*set.Nodes[v].Send + L
			if best == -1 || key < bestKey {
				best, bestKey = v, key
			}
		}
		if err := sch.AddChild(best, pi); err != nil {
			return nil, err
		}
		sent[best]++
		attached[pi] = true
		reception[pi] = bestKey + set.Nodes[pi].Recv
	}
	return sch, nil
}

// ReverseLeaves applies the paper's leaf-reversal post-pass in place and
// returns the schedule: leaf nodes are re-matched to the existing leaf
// delivery slots so that leaves with larger receiving overheads take
// delivery earlier. Because the slot set and all internal nodes are
// untouched, the reception completion time never increases; pairing the
// largest receiving overhead with the earliest slot minimizes
// max(d_slot + orecv) over all leaf-to-slot matchings.
func ReverseLeaves(sch *model.Schedule) (*model.Schedule, error) {
	leaves := sch.Leaves()
	if len(leaves) < 2 {
		return sch, nil
	}
	tm := model.ComputeTimes(sch)
	// Slots in increasing delivery time; occupants are the current leaves.
	slots := append([]model.NodeID(nil), leaves...)
	sort.Slice(slots, func(i, j int) bool {
		a, b := slots[i], slots[j]
		if tm.Delivery[a] != tm.Delivery[b] {
			return tm.Delivery[a] < tm.Delivery[b]
		}
		return a < b
	})
	// Leaves in decreasing receiving overhead.
	byRecv := append([]model.NodeID(nil), leaves...)
	set := sch.Set
	sort.Slice(byRecv, func(i, j int) bool {
		a, b := byRecv[i], byRecv[j]
		if set.Nodes[a].Recv != set.Nodes[b].Recv {
			return set.Nodes[a].Recv > set.Nodes[b].Recv
		}
		return a < b
	})
	// Desired occupant of slot i is byRecv[i]. Realize the permutation
	// with swaps; every involved node is a leaf so swaps are cheap and
	// keep the tree valid.
	pos := make(map[model.NodeID]int, len(slots)) // node -> current slot index
	occupant := append([]model.NodeID(nil), slots...)
	for i, v := range occupant {
		pos[v] = i
	}
	for i, want := range byRecv {
		cur := occupant[i]
		if cur == want {
			continue
		}
		j := pos[want]
		if err := sch.SwapNodes(cur, want); err != nil {
			return nil, fmt.Errorf("core: ReverseLeaves: %w", err)
		}
		occupant[i], occupant[j] = want, cur
		pos[want], pos[cur] = i, j
	}
	return sch, nil
}

// Greedy is the model.Scheduler for the paper's algorithm. Reversal
// selects whether the leaf-reversal post-pass runs.
type Greedy struct {
	Reversal bool
}

// Name implements model.Scheduler.
func (g Greedy) Name() string {
	if g.Reversal {
		return "greedy+leafrev"
	}
	return "greedy"
}

// Schedule implements model.Scheduler.
func (g Greedy) Schedule(set *model.MulticastSet) (*model.Schedule, error) {
	if g.Reversal {
		return ScheduleWithReversal(set)
	}
	return Schedule(set)
}

var _ model.Scheduler = Greedy{}
