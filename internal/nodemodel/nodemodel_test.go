package nodemodel

import (
	"math/rand"
	"testing"

	"repro/internal/cluster"
	"repro/internal/model"
)

func randInstance(rng *rand.Rand, n int) *Instance {
	costs := make([]int64, n+1)
	for i := range costs {
		costs[i] = 1 + rng.Int63n(8)
	}
	inst, err := New(costs)
	if err != nil {
		panic(err)
	}
	return inst
}

func TestNewValidation(t *testing.T) {
	if _, err := New(nil); err == nil {
		t.Error("empty instance accepted")
	}
	if _, err := New([]int64{1, 0}); err == nil {
		t.Error("zero cost accepted")
	}
	if _, err := New([]int64{2, 3}); err != nil {
		t.Errorf("valid instance rejected: %v", err)
	}
}

func TestTimesHandComputed(t *testing.T) {
	// Source cost 2, children costs 1 and 3.
	inst, err := New([]int64{2, 1, 3, 1})
	if err != nil {
		t.Fatal(err)
	}
	tr := NewTree(4)
	if err := tr.AddChild(0, 1); err != nil {
		t.Fatal(err)
	}
	if err := tr.AddChild(0, 2); err != nil {
		t.Fatal(err)
	}
	if err := tr.AddChild(1, 3); err != nil {
		t.Fatal(err)
	}
	hold, completion, err := inst.Times(tr)
	if err != nil {
		t.Fatal(err)
	}
	// hold(1) = 2, hold(2) = 4, hold(3) = hold(1) + c(1) = 3.
	want := []int64{0, 2, 4, 3}
	for v, w := range want {
		if hold[v] != w {
			t.Errorf("hold[%d] = %d, want %d", v, hold[v], w)
		}
	}
	if completion != 4 {
		t.Errorf("completion = %d, want 4", completion)
	}
}

func TestGreedyValidAndLayeredDeliveries(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 50; trial++ {
		inst := randInstance(rng, 1+rng.Intn(40))
		tr, err := inst.Greedy()
		if err != nil {
			t.Fatal(err)
		}
		if err := tr.Validate(); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		hold, _, err := inst.Times(tr)
		if err != nil {
			t.Fatal(err)
		}
		// Faster nodes hold the message no later than slower ones
		// (greedy is layered in this model too).
		for a := 1; a < len(inst.Costs); a++ {
			for b := 1; b < len(inst.Costs); b++ {
				if inst.Costs[a] < inst.Costs[b] && hold[a] > hold[b] {
					t.Fatalf("trial %d: cost(%d)=%d < cost(%d)=%d but hold %d > %d",
						trial, a, inst.Costs[a], b, inst.Costs[b], hold[a], hold[b])
				}
			}
		}
	}
}

func TestFactor2Bound(t *testing.T) {
	// Reference [13]: greedy is within a factor of two of optimal in the
	// node model. Verify on random small instances and record the worst
	// observed ratio.
	rng := rand.New(rand.NewSource(2))
	worst := 1.0
	for trial := 0; trial < 120; trial++ {
		inst := randInstance(rng, 1+rng.Intn(7))
		tr, err := inst.Greedy()
		if err != nil {
			t.Fatal(err)
		}
		g, err := inst.Completion(tr)
		if err != nil {
			t.Fatal(err)
		}
		opt, err := inst.BruteForce()
		if err != nil {
			t.Fatal(err)
		}
		if opt == 0 {
			continue
		}
		ratio := float64(g) / float64(opt)
		if ratio > worst {
			worst = ratio
		}
		if g > 2*opt {
			t.Fatalf("trial %d: greedy %d > 2x optimal %d (factor-2 bound violated)", trial, g, opt)
		}
		if g < opt {
			t.Fatalf("trial %d: greedy %d below optimal %d (oracle broken)", trial, g, opt)
		}
	}
	t.Logf("worst greedy/opt ratio observed: %.3f", worst)
}

func TestBruteForceLimit(t *testing.T) {
	inst := randInstance(rand.New(rand.NewSource(3)), MaxBruteForceN+1)
	if _, err := inst.BruteForce(); err == nil {
		t.Error("oversized brute force accepted")
	}
	empty, err := New([]int64{5})
	if err != nil {
		t.Fatal(err)
	}
	opt, err := empty.BruteForce()
	if err != nil || opt != 0 {
		t.Errorf("source-only optimum = %d, %v", opt, err)
	}
}

func TestFromReceiveSendAndToSchedule(t *testing.T) {
	set, err := cluster.Generate(cluster.GenConfig{N: 20, K: 3, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	inst := FromReceiveSend(set)
	if inst.N() != set.N() {
		t.Fatalf("N mismatch")
	}
	for i, n := range set.Nodes {
		if inst.Costs[i] != n.Send {
			t.Errorf("cost[%d] = %d, want %d", i, inst.Costs[i], n.Send)
		}
	}
	tr, err := inst.Greedy()
	if err != nil {
		t.Fatal(err)
	}
	sch, err := ToSchedule(tr, set)
	if err != nil {
		t.Fatal(err)
	}
	if err := sch.Validate(); err != nil {
		t.Fatalf("cross-model schedule invalid: %v", err)
	}
	// Cross-model cost: the receive-send evaluation is at least the
	// node-model estimate (extra overheads can only add).
	nmTime, err := inst.Completion(tr)
	if err != nil {
		t.Fatal(err)
	}
	if model.RT(sch) < nmTime {
		t.Errorf("receive-send RT %d below node-model estimate %d", model.RT(sch), nmTime)
	}
}

func TestToScheduleSizeMismatch(t *testing.T) {
	set, err := cluster.Generate(cluster.GenConfig{N: 3, K: 2, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	tr := NewTree(2)
	if _, err := ToSchedule(tr, set); err == nil {
		t.Error("size mismatch accepted")
	}
}

func TestTreeErrors(t *testing.T) {
	tr := NewTree(3)
	if err := tr.AddChild(1, 2); err == nil {
		t.Error("unattached parent accepted")
	}
	if err := tr.AddChild(0, 0); err == nil {
		t.Error("root as child accepted")
	}
	if err := tr.AddChild(0, 1); err != nil {
		t.Fatal(err)
	}
	if err := tr.AddChild(0, 1); err == nil {
		t.Error("double attach accepted")
	}
	if err := tr.Validate(); err == nil {
		t.Error("incomplete tree validated")
	}
}

func TestGreedyEqualsBruteForceOnUniformCosts(t *testing.T) {
	// With identical costs the node model reduces to the classic
	// homogeneous single-port broadcast, where greedy doubling is optimal.
	for n := 1; n <= 7; n++ {
		costs := make([]int64, n+1)
		for i := range costs {
			costs[i] = 3
		}
		inst, err := New(costs)
		if err != nil {
			t.Fatal(err)
		}
		tr, err := inst.Greedy()
		if err != nil {
			t.Fatal(err)
		}
		g, err := inst.Completion(tr)
		if err != nil {
			t.Fatal(err)
		}
		opt, err := inst.BruteForce()
		if err != nil {
			t.Fatal(err)
		}
		if g != opt {
			t.Errorf("n=%d: greedy %d != optimal %d on uniform costs", n, g, opt)
		}
	}
}
