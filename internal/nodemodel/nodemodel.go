// Package nodemodel implements the heterogeneous *node* model of
// Banikazemi et al. (1998) and Hall et al. (1998) -- the paper's
// references [2] and [9] -- as the prior-art substrate the receive-send
// model refines.
//
// In the node model each node x carries a single message initiation cost
// c(x). When x sends to y starting at time t, x is busy during
// [t, t+c(x)] and y holds the message at t+c(x), immediately free to
// forward it. There is no separate receiving overhead or network latency.
// Finding optimal multicasts in this model is NP-complete [9]; the greedy
// algorithm (fastest-node-first) is within a factor of two of optimal
// (Libeskind-Hadas et al., reference [13]), which package tests verify
// empirically.
//
// The package also converts between the two models, so the benchmark
// harness can quantify what planning with the poorer model costs when the
// network actually behaves per the receive-send model (experiment E12).
package nodemodel

import (
	"fmt"
	"sort"

	"repro/internal/model"
	"repro/internal/pqueue"
)

// Instance is a node-model multicast instance: per-node message initiation
// costs, index 0 being the source.
type Instance struct {
	Costs []int64
}

// New validates and builds an instance.
func New(costs []int64) (*Instance, error) {
	if len(costs) == 0 {
		return nil, fmt.Errorf("nodemodel: no nodes")
	}
	for i, c := range costs {
		if c <= 0 {
			return nil, fmt.Errorf("nodemodel: node %d has non-positive cost %d", i, c)
		}
	}
	return &Instance{Costs: append([]int64(nil), costs...)}, nil
}

// FromReceiveSend projects a receive-send instance onto the node model by
// keeping only the sending overheads (the receiving overheads and latency
// are invisible to this model).
func FromReceiveSend(set *model.MulticastSet) *Instance {
	costs := make([]int64, len(set.Nodes))
	for i, n := range set.Nodes {
		costs[i] = n.Send
	}
	return &Instance{Costs: costs}
}

// N returns the number of destinations.
func (in *Instance) N() int { return len(in.Costs) - 1 }

// Tree is an ordered multicast tree over the instance's nodes; the root is
// node 0 and children lists are in transmission order.
type Tree struct {
	Parent   []int
	Children [][]int
}

// NewTree creates an empty tree for n+1 nodes.
func NewTree(numNodes int) *Tree {
	p := make([]int, numNodes)
	for i := range p {
		p[i] = -1
	}
	return &Tree{Parent: p, Children: make([][]int, numNodes)}
}

// AddChild appends child to parent's transmission list.
func (t *Tree) AddChild(parent, child int) error {
	if parent < 0 || parent >= len(t.Parent) || child <= 0 || child >= len(t.Parent) {
		return fmt.Errorf("nodemodel: AddChild(%d, %d) out of range", parent, child)
	}
	if parent != 0 && t.Parent[parent] == -1 {
		return fmt.Errorf("nodemodel: parent %d not attached", parent)
	}
	if t.Parent[child] != -1 {
		return fmt.Errorf("nodemodel: child %d already attached", child)
	}
	t.Parent[child] = parent
	t.Children[parent] = append(t.Children[parent], child)
	return nil
}

// Validate checks that the tree spans every node exactly once.
func (t *Tree) Validate() error {
	for v := 1; v < len(t.Parent); v++ {
		if t.Parent[v] == -1 {
			return fmt.Errorf("nodemodel: node %d unattached", v)
		}
	}
	visited := make([]bool, len(t.Parent))
	visited[0] = true
	count := 1
	stack := []int{0}
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, c := range t.Children[v] {
			if visited[c] {
				return fmt.Errorf("nodemodel: node %d visited twice", c)
			}
			visited[c] = true
			count++
			stack = append(stack, c)
		}
	}
	if count != len(t.Parent) {
		return fmt.Errorf("nodemodel: %d of %d nodes reachable", count, len(t.Parent))
	}
	return nil
}

// Times returns each node's message-holding time under the node model:
// hold(root) = 0 and the i-th child w of v has
// hold(w) = hold(v) + i*c(v). The maximum is the completion time.
func (in *Instance) Times(t *Tree) ([]int64, int64, error) {
	if len(t.Parent) != len(in.Costs) {
		return nil, 0, fmt.Errorf("nodemodel: tree has %d nodes, instance %d", len(t.Parent), len(in.Costs))
	}
	hold := make([]int64, len(in.Costs))
	var completion int64
	stack := []int{0}
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for i, w := range t.Children[v] {
			hold[w] = hold[v] + int64(i+1)*in.Costs[v]
			if hold[w] > completion {
				completion = hold[w]
			}
			stack = append(stack, w)
		}
	}
	return hold, completion, nil
}

// Completion is Times reduced to the completion time.
func (in *Instance) Completion(t *Tree) (int64, error) {
	_, c, err := in.Times(t)
	return c, err
}

// Greedy is the fastest-node-first greedy of [2]/[9]: destinations sorted
// by non-decreasing cost; each is delivered at the earliest possible time.
// O(n log n).
func (in *Instance) Greedy() (*Tree, error) {
	n := len(in.Costs)
	t := NewTree(n)
	order := make([]int, 0, n-1)
	for v := 1; v < n; v++ {
		order = append(order, v)
	}
	sort.Slice(order, func(a, b int) bool {
		if in.Costs[order[a]] != in.Costs[order[b]] {
			return in.Costs[order[a]] < in.Costs[order[b]]
		}
		return order[a] < order[b]
	})
	pq := pqueue.New(n)
	pq.Push(0, in.Costs[0]) // source's first transmission completes at c(0)
	for _, d := range order {
		it, ok := pq.Pop()
		if !ok {
			return nil, fmt.Errorf("nodemodel: internal error: empty queue")
		}
		if err := t.AddChild(it.Value, d); err != nil {
			return nil, err
		}
		// d holds the message at it.Key and can complete its first send
		// c(d) later; the sender's next send completes c(sender) later.
		pq.Push(d, it.Key+in.Costs[d])
		pq.Push(it.Value, it.Key+in.Costs[it.Value])
	}
	return t, nil
}

// MaxBruteForceN caps the node-model brute force.
const MaxBruteForceN = 8

// BruteForce exhaustively finds the optimal completion time with
// branch-and-bound; the factor-2 oracle for tests and E12.
func (in *Instance) BruteForce() (int64, error) {
	n := in.N()
	if n > MaxBruteForceN {
		return 0, fmt.Errorf("nodemodel: brute force limited to %d destinations, got %d", MaxBruteForceN, n)
	}
	if n == 0 {
		return 0, nil
	}
	total := len(in.Costs)
	attached := make([]bool, total)
	attached[0] = true
	hold := make([]int64, total)
	sends := make([]int64, total)
	best := int64(1) << 62
	var rec func(remaining int, curMax int64)
	rec = func(remaining int, curMax int64) {
		if curMax >= best {
			return
		}
		if remaining == 0 {
			best = curMax
			return
		}
		for r := 1; r < total; r++ {
			if attached[r] {
				continue
			}
			// Symmetry: skip receivers with the same cost as an earlier
			// unattached one.
			dup := false
			for r2 := 1; r2 < r; r2++ {
				if !attached[r2] && in.Costs[r2] == in.Costs[r] {
					dup = true
					break
				}
			}
			if dup {
				continue
			}
			for s := 0; s < total; s++ {
				if !attached[s] {
					continue
				}
				h := hold[s] + (sends[s]+1)*in.Costs[s]
				newMax := curMax
				if h > newMax {
					newMax = h
				}
				if newMax >= best {
					continue
				}
				attached[r] = true
				hold[r] = h
				sends[s]++
				rec(remaining-1, newMax)
				attached[r] = false
				sends[s]--
			}
		}
	}
	rec(n, 0)
	return best, nil
}

// ToSchedule reinterprets a node-model tree as a receive-send schedule for
// the given set (which must have the same node count), enabling
// cross-model evaluation: plan with the poor model, pay with the rich one.
func ToSchedule(t *Tree, set *model.MulticastSet) (*model.Schedule, error) {
	if len(t.Parent) != len(set.Nodes) {
		return nil, fmt.Errorf("nodemodel: tree has %d nodes, set %d", len(t.Parent), len(set.Nodes))
	}
	if err := t.Validate(); err != nil {
		return nil, err
	}
	sch := model.NewSchedule(set)
	queue := []int{0}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for _, c := range t.Children[v] {
			if err := sch.AddChild(model.NodeID(v), model.NodeID(c)); err != nil {
				return nil, err
			}
			queue = append(queue, c)
		}
	}
	return sch, nil
}
