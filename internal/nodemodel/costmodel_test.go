package nodemodel

import (
	"math/rand"
	"testing"

	"repro/internal/model"
)

// TestNodeModelMatchesInstanceTimes pins model.NodeModel with Lambda = 0
// to the retained reference evaluator Instance.Times: identical hold
// times on every node, identical completion, across random costs and
// random trees.
func TestNodeModelMatchesInstanceTimes(t *testing.T) {
	for seed := int64(0); seed < 25; seed++ {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(14)
		costs := make([]int64, n+1)
		for i := range costs {
			costs[i] = 1 + rng.Int63n(9)
		}
		in, err := New(costs)
		if err != nil {
			t.Fatal(err)
		}
		tree := NewTree(n + 1)
		for v := 1; v <= n; v++ {
			if err := tree.AddChild(rng.Intn(v), v); err != nil {
				t.Fatal(err)
			}
		}
		hold, completion, err := in.Times(tree)
		if err != nil {
			t.Fatal(err)
		}

		// The same tree as a Schedule over a set whose Send overheads are
		// the node-model costs (Recv is ignored by the model).
		set := &model.MulticastSet{Latency: 1, Nodes: make([]model.Node, n+1)}
		for i := range set.Nodes {
			set.Nodes[i] = model.Node{Send: costs[i], Recv: 1}
		}
		sch, err := ToSchedule(tree, set)
		if err != nil {
			t.Fatal(err)
		}
		var tm model.Times
		if err := (model.NodeModel{}).EvalInto(sch, &tm); err != nil {
			t.Fatal(err)
		}
		if tm.RT != completion || tm.DT != completion {
			t.Fatalf("seed %d: NodeModel RT/DT = %d/%d, Instance.Times completion = %d", seed, tm.RT, tm.DT, completion)
		}
		for v := 0; v <= n; v++ {
			if tm.Delivery[v] != hold[v] {
				t.Fatalf("seed %d node %d: NodeModel hold = %d, reference %d", seed, v, tm.Delivery[v], hold[v])
			}
		}
	}
}
