package wan

import (
	"math/rand"
	"testing"

	"repro/internal/model"
)

func clusteredTopo(t *testing.T, seed int64) *Topology {
	t.Helper()
	topo, err := GenerateClustered(ClusteredConfig{
		Clusters: 3, NodesPerCluster: 5,
		LANLatency: 2, WANLatency: 60,
		K: 3, MaxSend: 12, Seed: seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	return topo
}

// shuffledSchedule builds a random-order greedy-shaped tree so parity
// tests see trees other than the ones the WAN greedy likes.
func shuffledSchedule(t *testing.T, rng *rand.Rand, set *model.MulticastSet) *model.Schedule {
	t.Helper()
	sch := model.NewSchedule(set)
	attached := []model.NodeID{0}
	order := rng.Perm(len(set.Nodes) - 1)
	for _, i := range order {
		v := model.NodeID(i + 1)
		p := attached[rng.Intn(len(attached))]
		if err := sch.AddChild(p, v); err != nil {
			t.Fatal(err)
		}
		attached = append(attached, v)
	}
	return sch
}

// TestLinkModelMatchesTopologyTimes pins model.LinkModel bit-identically
// to the retained reference evaluator Topology.ComputeTimes on random
// trees over clustered topologies — the oracle contract the engine's WAN
// fast path is certified against.
func TestLinkModelMatchesTopologyTimes(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		topo := clusteredTopo(t, seed)
		set := topo.BaseSet(topo.MinLatency())
		rng := rand.New(rand.NewSource(seed))
		sch := shuffledSchedule(t, rng, set)
		want, err := topo.ComputeTimes(sch)
		if err != nil {
			t.Fatal(err)
		}
		cm := &model.LinkModel{Lat: topo.Lat}
		var got model.Times
		if err := cm.EvalInto(sch, &got); err != nil {
			t.Fatal(err)
		}
		if got.RT != want.RT || got.DT != want.DT {
			t.Fatalf("seed %d: LinkModel DT/RT = %d/%d, Topology.ComputeTimes %d/%d",
				seed, got.DT, got.RT, want.DT, want.RT)
		}
		for v := range want.Delivery {
			if got.Delivery[v] != want.Delivery[v] || got.Reception[v] != want.Reception[v] {
				t.Fatalf("seed %d node %d: LinkModel d/r = %d/%d, reference %d/%d",
					seed, v, got.Delivery[v], got.Reception[v], want.Delivery[v], want.Reception[v])
			}
		}
	}
}

// FuzzLinkModelParity is the fuzzing form: random matrices, random trees,
// LinkModel.EvalInto vs Topology.ComputeTimes, every per-node time.
func FuzzLinkModelParity(f *testing.F) {
	f.Add(int64(1), int64(3))
	f.Add(int64(77), int64(9))
	f.Add(int64(12345), int64(31))
	f.Fuzz(func(t *testing.T, seed, shape int64) {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + int(uint64(shape)%14)
		// Correlated types, as Topology.Validate requires: higher send
		// implies higher recv.
		k := 2 + rng.Intn(4)
		types := make([]model.Node, k)
		var send, recv int64
		for i := range types {
			send += 1 + rng.Int63n(5)
			recv += send + rng.Int63n(6)
			types[i] = model.Node{Send: send, Recv: recv}
		}
		nodes := make([]model.Node, n+1)
		for i := range nodes {
			nodes[i] = types[rng.Intn(k)]
		}
		lat := make([][]int64, n+1)
		for u := range lat {
			lat[u] = make([]int64, n+1)
			for v := range lat[u] {
				if u != v {
					lat[u][v] = 1 + rng.Int63n(50)
				}
			}
		}
		topo := &Topology{Nodes: nodes, Lat: lat}
		if err := topo.Validate(); err != nil {
			t.Fatal(err)
		}
		set := topo.BaseSet(topo.MinLatency())
		sch := shuffledSchedule(t, rng, set)
		want, err := topo.ComputeTimes(sch)
		if err != nil {
			t.Fatal(err)
		}
		var got model.Times
		if err := (&model.LinkModel{Lat: lat}).EvalInto(sch, &got); err != nil {
			t.Fatal(err)
		}
		if got.RT != want.RT || got.DT != want.DT {
			t.Fatalf("LinkModel DT/RT = %d/%d, reference %d/%d", got.DT, got.RT, want.DT, want.RT)
		}
		for v := range want.Delivery {
			if got.Delivery[v] != want.Delivery[v] || got.Reception[v] != want.Reception[v] {
				t.Fatalf("node %d: LinkModel d/r = %d/%d, reference %d/%d",
					v, got.Delivery[v], got.Reception[v], want.Delivery[v], want.Reception[v])
			}
		}
	})
}

// TestGenerateClusteredRespectsMaxSend is the satellite-1 property test:
// the cumulative type draw used to overshoot the documented MaxSend bound
// by up to K; every drawn type must now respect it, across seeds and
// (K, MaxSend) shapes including the tight K == MaxSend corner.
func TestGenerateClusteredRespectsMaxSend(t *testing.T) {
	shapes := []struct {
		k       int
		maxSend int64
	}{{2, 4}, {3, 3}, {4, 5}, {5, 8}, {8, 8}, {6, 64}}
	for _, sh := range shapes {
		for seed := int64(0); seed < 200; seed++ {
			topo, err := GenerateClustered(ClusteredConfig{
				Clusters: 2, NodesPerCluster: 4,
				LANLatency: 1, WANLatency: 10,
				K: sh.k, MaxSend: sh.maxSend, Seed: seed,
			})
			if err != nil {
				t.Fatal(err)
			}
			for i, nd := range topo.Nodes {
				if nd.Send > sh.maxSend {
					t.Fatalf("k=%d maxSend=%d seed=%d: node %d has send %d > MaxSend",
						sh.k, sh.maxSend, seed, i, nd.Send)
				}
				if nd.Send < 1 || nd.Recv < nd.Send {
					t.Fatalf("k=%d maxSend=%d seed=%d: node %d has degenerate overheads %+v",
						sh.k, sh.maxSend, seed, i, nd)
				}
			}
		}
	}
}

// TestGreedyScheduleRejectsBaseScoring is the satellite-2 regression
// test. Topology.Greedy used to return a schedule whose embedded set
// carries the uniform MinLatency stand-in, so scoring it with the base
// helpers (model.RT / model.ComputeTimes) silently reported WAN times
// with every inter-island latency collapsed to the LAN floor — a number
// that is simply wrong, and wrong in the flattering direction. The
// schedule is now bound to its link model: the silent path panics, the
// model-dispatching path reports the true WAN times, and the old wrong
// number is demonstrably different.
func TestGreedyScheduleRejectsBaseScoring(t *testing.T) {
	topo := clusteredTopo(t, 4)
	sch, err := topo.Greedy()
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := sch.Model().(*model.LinkModel); !ok {
		t.Fatalf("Greedy schedule bound to %T, want *model.LinkModel", sch.Model())
	}

	want, err := topo.ComputeTimes(sch)
	if err != nil {
		t.Fatal(err)
	}
	var got model.Times
	if err := model.EvalTimes(sch, &got); err != nil {
		t.Fatal(err)
	}
	if got.RT != want.RT {
		t.Fatalf("EvalTimes RT = %d, Topology.ComputeTimes RT = %d", got.RT, want.RT)
	}

	// The old silent-wrong number: base scoring of the same tree over the
	// embedded uniform-latency set. On a clustered topology with WAN >>
	// LAN it must differ from the true WAN completion (it pretends every
	// cross-island hop costs the LAN floor).
	var wrong model.Times
	if err := (model.BaseModel{}).EvalInto(sch, &wrong); err != nil {
		t.Fatal(err)
	}
	if wrong.RT == want.RT {
		t.Fatalf("base scoring accidentally matches the WAN RT %d; the regression guard needs a sharper topology", want.RT)
	}

	// And the silent path itself is closed: base helpers refuse the
	// wan-bound schedule instead of reporting `wrong`.
	defer func() {
		if recover() == nil {
			t.Fatal("model.RT on the wan-bound greedy schedule did not panic")
		}
	}()
	model.RT(sch)
}
