// Package wan extends the receive-send model with per-link latencies, the
// direction of Bhat, Raghavendra and Prasanna (the paper's reference [5]):
// in wide-area networks the latency between two nodes depends on whether
// they share a LAN or talk over a long-haul link, so the single global L
// of the receive-send model under-specifies the system.
//
// The package reuses the ordered-tree schedules of package model but
// evaluates them against a latency matrix, provides a WAN-aware greedy
// (the paper's greedy with per-destination latency terms), and generates
// clustered topologies for the E15 experiment that quantifies the cost of
// pretending a WAN is a LAN.
package wan

import (
	"fmt"
	"math/rand"

	"repro/internal/model"
)

// Topology is a receive-send instance with per-ordered-pair latencies.
type Topology struct {
	// Nodes as in the base model; Nodes[0] is the source.
	Nodes []model.Node
	// Lat[u][v] is the network latency from u to v (>= 1 for u != v).
	Lat [][]int64
}

// Validate checks overhead positivity, correlation (via the base model)
// and the latency matrix shape.
func (t *Topology) Validate() error {
	base := &model.MulticastSet{Latency: 1, Nodes: t.Nodes}
	if err := base.Validate(); err != nil {
		return err
	}
	n := len(t.Nodes)
	if len(t.Lat) != n {
		return fmt.Errorf("wan: latency matrix has %d rows for %d nodes", len(t.Lat), n)
	}
	for u, row := range t.Lat {
		if len(row) != n {
			return fmt.Errorf("wan: latency row %d has %d entries", u, len(row))
		}
		for v, l := range row {
			if u == v {
				continue
			}
			if l < 1 {
				return fmt.Errorf("wan: latency %d->%d is %d (must be >= 1)", u, v, l)
			}
		}
	}
	return nil
}

// N returns the destination count.
func (t *Topology) N() int { return len(t.Nodes) - 1 }

// Uniform builds a topology with a single latency everywhere, equivalent
// to the base model instance.
func Uniform(set *model.MulticastSet) *Topology {
	n := len(set.Nodes)
	lat := make([][]int64, n)
	for u := range lat {
		lat[u] = make([]int64, n)
		for v := range lat[u] {
			if u != v {
				lat[u][v] = set.Latency
			}
		}
	}
	return &Topology{Nodes: append([]model.Node(nil), set.Nodes...), Lat: lat}
}

// BaseSet returns the topology's nodes as a base-model instance using the
// given uniform latency (for running latency-oblivious schedulers).
func (t *Topology) BaseSet(latency int64) *model.MulticastSet {
	return &model.MulticastSet{Latency: latency, Nodes: append([]model.Node(nil), t.Nodes...)}
}

// MinLatency returns the smallest off-diagonal latency.
func (t *Topology) MinLatency() int64 {
	min := int64(-1)
	for u, row := range t.Lat {
		for v, l := range row {
			if u == v {
				continue
			}
			if min == -1 || l < min {
				min = l
			}
		}
	}
	if min == -1 {
		min = 1
	}
	return min
}

// ComputeTimes evaluates a schedule tree against the latency matrix:
// the i-th child w of v is delivered at r(v) + i*osend(v) + Lat[v][w].
func (t *Topology) ComputeTimes(sch *model.Schedule) (model.Times, error) {
	if len(sch.Set.Nodes) != len(t.Nodes) {
		return model.Times{}, fmt.Errorf("wan: schedule over %d nodes, topology has %d", len(sch.Set.Nodes), len(t.Nodes))
	}
	n := len(t.Nodes)
	tm := model.Times{Delivery: make([]int64, n), Reception: make([]int64, n)}
	stack := []model.NodeID{0}
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		rv := tm.Reception[v]
		sv := t.Nodes[v].Send
		for i, w := range sch.Children(v) {
			d := rv + int64(i+1)*sv + t.Lat[v][w]
			tm.Delivery[w] = d
			tm.Reception[w] = d + t.Nodes[w].Recv
			if d > tm.DT {
				tm.DT = d
			}
			if tm.Reception[w] > tm.RT {
				tm.RT = tm.Reception[w]
			}
			stack = append(stack, w)
		}
	}
	return tm, nil
}

// Greedy is the WAN-aware adaptation of the paper's greedy: destinations
// are inserted in non-decreasing overhead order; each is delivered at the
// earliest completion over all attached senders, where a sender's
// completion now includes the pair latency. Because the key depends on
// the (sender, destination) pair, the priority queue degenerates to a
// scan: O(n^2) total, documented and acceptable at WAN scales.
func (t *Topology) Greedy() (*model.Schedule, error) {
	if err := t.Validate(); err != nil {
		return nil, err
	}
	// The embedded set's scalar latency is unused by topology evaluation;
	// carry the minimum so base-model invariants (positive L) hold.
	set := t.BaseSet(t.MinLatency())
	sch := model.NewSchedule(set)
	n := len(t.Nodes)
	attached := make([]bool, n)
	attached[0] = true
	reception := make([]int64, n)
	sends := make([]int64, n)
	for _, pi := range set.SortedDestinations() {
		best, bestKey := -1, int64(0)
		for v := 0; v < n; v++ {
			if !attached[v] {
				continue
			}
			key := reception[v] + (sends[v]+1)*t.Nodes[v].Send + t.Lat[v][pi]
			if best == -1 || key < bestKey {
				best, bestKey = v, key
			}
		}
		if err := sch.AddChild(model.NodeID(best), pi); err != nil {
			return nil, err
		}
		sends[best]++
		attached[pi] = true
		reception[pi] = bestKey + t.Nodes[pi].Recv
	}
	// Bind the schedule to its cost model: the embedded set's scalar
	// latency is a placeholder, so scoring this plan with base-model
	// ComputeTimes would silently report wrong WAN times. The binding makes
	// that path panic instead; evaluate with t.ComputeTimes or
	// model.EvalTimes.
	sch.BindModel(&model.LinkModel{Lat: t.Lat})
	return sch, nil
}

// ClusteredConfig parameterizes the two-level WAN generator.
type ClusteredConfig struct {
	// Clusters is the number of LAN islands (>= 1); nodes are spread
	// round-robin.
	Clusters int
	// NodesPerCluster is the number of nodes in each island (the source
	// lives in island 0).
	NodesPerCluster int
	// LANLatency and WANLatency are the intra/inter-island latencies.
	LANLatency, WANLatency int64
	// K is the number of workstation types (default 2).
	K int
	// MaxSend bounds sending overheads (default 16).
	MaxSend int64
	// Seed drives the RNG.
	Seed int64
}

// GenerateClustered builds a WAN of LAN islands: small latency within an
// island, large across islands, heterogeneous nodes drawn as in package
// cluster.
func GenerateClustered(cfg ClusteredConfig) (*Topology, error) {
	if cfg.Clusters < 1 || cfg.NodesPerCluster < 1 {
		return nil, fmt.Errorf("wan: need at least one cluster and one node per cluster")
	}
	if cfg.LANLatency < 1 || cfg.WANLatency < cfg.LANLatency {
		return nil, fmt.Errorf("wan: latencies must satisfy 1 <= LAN <= WAN")
	}
	k := cfg.K
	if k <= 0 {
		k = 2
	}
	maxSend := cfg.MaxSend
	if maxSend <= 0 {
		maxSend = 16
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	// Draw k correlated types.
	types := make([]model.Node, k)
	send, recv := int64(0), int64(0)
	prevSend := int64(0)
	for i := range types {
		send += 1 + rng.Int63n(maxSend/int64(k)+1)
		if send > maxSend {
			// The cumulative draw can overshoot by up to k (each of the k
			// type draws adds at least 1 on top of maxSend/k); clamp so the
			// documented MaxSend bound actually holds for every type.
			send = maxSend
		}
		if send == prevSend {
			// Two consecutive draws clamped onto the cap: duplicate the
			// previous type wholesale. Equal send with a different recv
			// would break the correlated-overheads invariant Validate
			// enforces.
			types[i] = types[i-1]
			types[i].Name = fmt.Sprintf("type%d", i)
			continue
		}
		r := send + rng.Int63n(send+1)
		if r <= recv {
			r = recv + 1
		}
		recv = r
		prevSend = send
		types[i] = model.Node{Send: send, Recv: recv, Name: fmt.Sprintf("type%d", i)}
	}
	total := cfg.Clusters * cfg.NodesPerCluster
	nodes := make([]model.Node, total)
	island := make([]int, total)
	for i := range nodes {
		nodes[i] = types[rng.Intn(k)]
		island[i] = i % cfg.Clusters
	}
	lat := make([][]int64, total)
	for u := range lat {
		lat[u] = make([]int64, total)
		for v := range lat[u] {
			if u == v {
				continue
			}
			if island[u] == island[v] {
				lat[u][v] = cfg.LANLatency
			} else {
				lat[u][v] = cfg.WANLatency
			}
		}
	}
	topo := &Topology{Nodes: nodes, Lat: lat}
	if err := topo.Validate(); err != nil {
		return nil, err
	}
	return topo, nil
}
