package wan

import (
	"math/rand"
	"testing"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/model"
)

func TestUniformMatchesBaseModel(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 30; trial++ {
		set, err := cluster.Generate(cluster.GenConfig{N: 1 + rng.Intn(25), K: 3, Seed: rng.Int63()})
		if err != nil {
			t.Fatal(err)
		}
		sch, err := core.Schedule(set)
		if err != nil {
			t.Fatal(err)
		}
		topo := Uniform(set)
		if err := topo.Validate(); err != nil {
			t.Fatal(err)
		}
		got, err := topo.ComputeTimes(sch)
		if err != nil {
			t.Fatal(err)
		}
		want := model.ComputeTimes(sch)
		if got.RT != want.RT || got.DT != want.DT {
			t.Fatalf("trial %d: uniform topology RT/DT (%d,%d) != base (%d,%d)", trial, got.RT, got.DT, want.RT, want.DT)
		}
		for v := range want.Delivery {
			if got.Delivery[v] != want.Delivery[v] {
				t.Fatalf("trial %d: delivery[%d] %d != %d", trial, v, got.Delivery[v], want.Delivery[v])
			}
		}
	}
}

func TestGreedyUniformMatchesBaseGreedy(t *testing.T) {
	// On a uniform matrix the WAN-aware greedy must coincide (in RT) with
	// the paper's greedy.
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 30; trial++ {
		set, err := cluster.Generate(cluster.GenConfig{N: 1 + rng.Intn(20), K: 2, Seed: rng.Int63()})
		if err != nil {
			t.Fatal(err)
		}
		topo := Uniform(set)
		wsch, err := topo.Greedy()
		if err != nil {
			t.Fatal(err)
		}
		wt, err := topo.ComputeTimes(wsch)
		if err != nil {
			t.Fatal(err)
		}
		bsch, err := core.Schedule(set)
		if err != nil {
			t.Fatal(err)
		}
		if wt.RT != model.RT(bsch) {
			t.Fatalf("trial %d: WAN greedy RT %d != base greedy RT %d", trial, wt.RT, model.RT(bsch))
		}
	}
}

func TestHandComputedTwoIsland(t *testing.T) {
	// Source and one node in island A (LAN=1), one node in island B
	// (WAN=10); homogeneous overheads s=r=1.
	nodes := []model.Node{{Send: 1, Recv: 1}, {Send: 1, Recv: 1}, {Send: 1, Recv: 1}}
	lat := [][]int64{
		{0, 1, 10},
		{1, 0, 10},
		{10, 10, 0},
	}
	topo := &Topology{Nodes: nodes, Lat: lat}
	if err := topo.Validate(); err != nil {
		t.Fatal(err)
	}
	sch, err := topo.Greedy()
	if err != nil {
		t.Fatal(err)
	}
	tm, err := topo.ComputeTimes(sch)
	if err != nil {
		t.Fatal(err)
	}
	// Best: source sends to 1 (d=1+1=2, r=3) and to 2 (d=2+10=12, r=13).
	if tm.RT != 13 {
		t.Errorf("RT = %d, want 13 (tree %s)", tm.RT, sch)
	}
}

func TestGenerateClusteredShape(t *testing.T) {
	topo, err := GenerateClustered(ClusteredConfig{Clusters: 3, NodesPerCluster: 5, LANLatency: 2, WANLatency: 40, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if topo.N() != 14 {
		t.Errorf("N = %d, want 14", topo.N())
	}
	// Latency values are exactly LAN or WAN off-diagonal.
	lan, wan := 0, 0
	for u := range topo.Lat {
		for v := range topo.Lat[u] {
			if u == v {
				continue
			}
			switch topo.Lat[u][v] {
			case 2:
				lan++
			case 40:
				wan++
			default:
				t.Fatalf("unexpected latency %d", topo.Lat[u][v])
			}
		}
	}
	if lan == 0 || wan == 0 {
		t.Error("expected both LAN and WAN links")
	}
	if topo.MinLatency() != 2 {
		t.Errorf("MinLatency = %d", topo.MinLatency())
	}
}

func TestGenerateClusteredErrors(t *testing.T) {
	if _, err := GenerateClustered(ClusteredConfig{Clusters: 0, NodesPerCluster: 3, LANLatency: 1, WANLatency: 2}); err == nil {
		t.Error("zero clusters accepted")
	}
	if _, err := GenerateClustered(ClusteredConfig{Clusters: 1, NodesPerCluster: 3, LANLatency: 5, WANLatency: 2}); err == nil {
		t.Error("WAN < LAN accepted")
	}
}

func TestWANAwareBeatsObliviousOnClusteredTopologies(t *testing.T) {
	// The point of reference [5]: a scheduler that assumes one global L
	// (the LAN value) builds trees that cross the WAN too often. Compare
	// total RT across seeds; WAN-aware greedy must win in aggregate and
	// never lose badly.
	var aware, oblivious int64
	for seed := int64(0); seed < 25; seed++ {
		topo, err := GenerateClustered(ClusteredConfig{
			Clusters: 3, NodesPerCluster: 8, LANLatency: 2, WANLatency: 80, Seed: seed,
		})
		if err != nil {
			t.Fatal(err)
		}
		wsch, err := topo.Greedy()
		if err != nil {
			t.Fatal(err)
		}
		wt, err := topo.ComputeTimes(wsch)
		if err != nil {
			t.Fatal(err)
		}
		// Oblivious: run the paper's greedy believing L = LAN latency,
		// then pay the true matrix.
		osch, err := core.Schedule(topo.BaseSet(2))
		if err != nil {
			t.Fatal(err)
		}
		ot, err := topo.ComputeTimes(osch)
		if err != nil {
			t.Fatal(err)
		}
		aware += wt.RT
		oblivious += ot.RT
		if wt.RT > 3*ot.RT {
			t.Fatalf("seed %d: WAN-aware greedy much worse than oblivious (%d vs %d)", seed, wt.RT, ot.RT)
		}
	}
	if aware >= oblivious {
		t.Errorf("WAN-aware total %d not better than oblivious total %d", aware, oblivious)
	}
	t.Logf("aggregate RT: aware %d vs oblivious %d (%.2fx)", aware, oblivious, float64(oblivious)/float64(aware))
}

func TestValidateErrors(t *testing.T) {
	nodes := []model.Node{{Send: 1, Recv: 1}, {Send: 1, Recv: 1}}
	if err := (&Topology{Nodes: nodes, Lat: [][]int64{{0, 1}}}).Validate(); err == nil {
		t.Error("short matrix accepted")
	}
	if err := (&Topology{Nodes: nodes, Lat: [][]int64{{0, 0}, {1, 0}}}).Validate(); err == nil {
		t.Error("zero off-diagonal latency accepted")
	}
	bad := [][]int64{{0, 1, 1}, {1, 0, 1}, {1, 1, 0}}
	if err := (&Topology{Nodes: nodes, Lat: bad}).Validate(); err == nil {
		t.Error("oversized matrix accepted")
	}
}
