package baselines

import (
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/model"
)

func randSet(rng *rand.Rand, n int) *model.MulticastSet {
	palette := []model.Node{{Send: 1, Recv: 1}, {Send: 2, Recv: 3}, {Send: 4, Recv: 7}}
	nodes := make([]model.Node, n+1)
	for i := range nodes {
		nodes[i] = palette[rng.Intn(len(palette))]
	}
	set := &model.MulticastSet{Latency: int64(1 + rng.Intn(3)), Nodes: nodes}
	if err := set.Validate(); err != nil {
		panic(err)
	}
	return set
}

func TestAllProduceValidSchedules(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 40; trial++ {
		set := randSet(rng, 1+rng.Intn(30))
		for _, s := range All(7) {
			sch, err := s.Schedule(set)
			if err != nil {
				t.Fatalf("%s: %v", s.Name(), err)
			}
			if err := sch.Validate(); err != nil {
				t.Fatalf("%s: invalid schedule: %v", s.Name(), err)
			}
			if !sch.Complete() {
				t.Fatalf("%s: incomplete schedule", s.Name())
			}
		}
	}
}

func TestNamesDistinct(t *testing.T) {
	seen := map[string]bool{}
	for _, s := range All(1) {
		if seen[s.Name()] {
			t.Errorf("duplicate scheduler name %q", s.Name())
		}
		seen[s.Name()] = true
	}
}

func TestStarStructure(t *testing.T) {
	set := randSet(rand.New(rand.NewSource(3)), 10)
	sch, err := Star{}.Schedule(set)
	if err != nil {
		t.Fatal(err)
	}
	if len(sch.Children(0)) != 10 {
		t.Errorf("star root has %d children, want 10", len(sch.Children(0)))
	}
	// Children ordered by non-increasing receiving overhead.
	kids := sch.Children(0)
	for i := 1; i < len(kids); i++ {
		if set.Nodes[kids[i]].Recv > set.Nodes[kids[i-1]].Recv {
			t.Errorf("star children not in decreasing recv order at %d", i)
		}
	}
}

func TestChainStructure(t *testing.T) {
	set := randSet(rand.New(rand.NewSource(4)), 8)
	sch, err := Chain{}.Schedule(set)
	if err != nil {
		t.Fatal(err)
	}
	// Every node has at most one child; depth equals n.
	for v := 0; v < len(set.Nodes); v++ {
		if len(sch.Children(model.NodeID(v))) > 1 {
			t.Errorf("chain node %d has %d children", v, len(sch.Children(model.NodeID(v))))
		}
	}
}

func TestBinomialStructure(t *testing.T) {
	// On a homogeneous instance the binomial tree has the classic shape:
	// root degree ~log2(n).
	nodes := make([]model.Node, 16)
	for i := range nodes {
		nodes[i] = model.Node{Send: 1, Recv: 1}
	}
	set := &model.MulticastSet{Latency: 1, Nodes: nodes}
	sch, err := Binomial{}.Schedule(set)
	if err != nil {
		t.Fatal(err)
	}
	if err := sch.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := len(sch.Children(0)); got != 4 {
		t.Errorf("binomial root degree = %d, want 4 for 16 nodes", got)
	}
	// Completion: recursive halving with S=R=L=1. Every round costs
	// S+L+R = 3 at the critical path; RT must be far below the
	// sequential star's.
	star, err := Star{}.Schedule(set)
	if err != nil {
		t.Fatal(err)
	}
	if model.RT(sch) >= model.RT(star) {
		t.Errorf("binomial RT %d not better than star RT %d on homogeneous instance", model.RT(sch), model.RT(star))
	}
}

func TestFNFIgnoresReceiveOverheads(t *testing.T) {
	// Two instances identical except for receiving overheads must give
	// FNF the same tree (it cannot see recv), while greedy adapts.
	a := &model.MulticastSet{Latency: 1, Nodes: []model.Node{
		{Send: 1, Recv: 1}, {Send: 1, Recv: 1}, {Send: 2, Recv: 2}, {Send: 4, Recv: 4}, {Send: 4, Recv: 4},
	}}
	b := &model.MulticastSet{Latency: 1, Nodes: []model.Node{
		{Send: 1, Recv: 2}, {Send: 1, Recv: 2}, {Send: 2, Recv: 5}, {Send: 4, Recv: 20}, {Send: 4, Recv: 20},
	}}
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
	if err := b.Validate(); err != nil {
		t.Fatal(err)
	}
	sa, err := FNF{}.Schedule(a)
	if err != nil {
		t.Fatal(err)
	}
	sb, err := FNF{}.Schedule(b)
	if err != nil {
		t.Fatal(err)
	}
	if !sa.Equal(sb) {
		t.Errorf("FNF trees differ despite identical send overheads:\n%s\n%s", sa, sb)
	}
}

func TestRandomDeterministicPerSeed(t *testing.T) {
	set := randSet(rand.New(rand.NewSource(5)), 12)
	s1, err := (Random{Seed: 9}).Schedule(set)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := (Random{Seed: 9}).Schedule(set)
	if err != nil {
		t.Fatal(err)
	}
	if !s1.Equal(s2) {
		t.Error("same seed produced different trees")
	}
	s3, err := (Random{Seed: 10}).Schedule(set)
	if err != nil {
		t.Fatal(err)
	}
	if s1.Equal(s3) {
		t.Error("different seeds produced identical trees (suspicious)")
	}
}

func TestGreedyDominatesBaselinesInAggregate(t *testing.T) {
	// Greedy is not provably better than every baseline on every
	// instance, but across many random heterogeneous instances its total
	// completion time must be no worse than each baseline's.
	rng := rand.New(rand.NewSource(6))
	totals := map[string]int64{}
	var greedyTotal int64
	const trials = 150
	for trial := 0; trial < trials; trial++ {
		set := randSet(rng, 2+rng.Intn(40))
		g, err := core.ScheduleWithReversal(set)
		if err != nil {
			t.Fatal(err)
		}
		greedyTotal += model.RT(g)
		for _, s := range All(int64(trial)) {
			sch, err := s.Schedule(set)
			if err != nil {
				t.Fatalf("%s: %v", s.Name(), err)
			}
			totals[s.Name()] += model.RT(sch)
		}
	}
	for name, total := range totals {
		if greedyTotal > total {
			t.Errorf("greedy total RT %d worse than %s total %d over %d trials", greedyTotal, name, total, trials)
		}
	}
}
