// Package baselines provides the comparison schedulers the benchmark
// harness pits against the paper's greedy algorithm: the prior-art
// fastest-node-first heuristic for the heterogeneous *node* model
// (Banikazemi et al. 1998), the classic homogeneous binomial tree, a
// sequential star, a linear chain, and a seeded random tree. All of them
// build valid schedules for the receive-send model; they differ in how
// much heterogeneity information they exploit.
package baselines

import (
	"fmt"
	"math/rand"

	"repro/internal/model"
	"repro/internal/pqueue"
)

// Star is the sequential baseline: the source transmits to every
// destination directly. Children are ordered by decreasing receiving
// overhead (slow receivers take earlier slots), which is the best possible
// star for the model.
type Star struct{}

// Name implements model.Scheduler.
func (Star) Name() string { return "star" }

// Schedule implements model.Scheduler.
func (Star) Schedule(set *model.MulticastSet) (*model.Schedule, error) {
	sch := model.NewSchedule(set)
	order := set.SortedDestinations()
	// Reverse: slowest (largest receiving overhead) first.
	for i := len(order) - 1; i >= 0; i-- {
		if err := sch.AddChild(0, order[i]); err != nil {
			return nil, err
		}
	}
	return sch, nil
}

// Chain is the linear pipeline baseline: the source sends to the fastest
// destination, which forwards to the next fastest, and so on. Each node
// makes exactly one transmission.
type Chain struct{}

// Name implements model.Scheduler.
func (Chain) Name() string { return "chain" }

// Schedule implements model.Scheduler.
func (Chain) Schedule(set *model.MulticastSet) (*model.Schedule, error) {
	sch := model.NewSchedule(set)
	prev := model.NodeID(0)
	for _, v := range set.SortedDestinations() {
		if err := sch.AddChild(prev, v); err != nil {
			return nil, err
		}
		prev = v
	}
	return sch, nil
}

// Binomial is the classic heterogeneity-oblivious binomial broadcast tree
// (recursive halving over the destinations in ID order), the standard
// MPI-style broadcast for homogeneous one-port systems. It ignores all
// overhead information.
type Binomial struct{}

// Name implements model.Scheduler.
func (Binomial) Name() string { return "binomial" }

// Schedule implements model.Scheduler.
func (Binomial) Schedule(set *model.MulticastSet) (*model.Schedule, error) {
	sch := model.NewSchedule(set)
	// ids[0] is the source; the rest are destinations in ID order.
	ids := make([]model.NodeID, len(set.Nodes))
	for i := range ids {
		ids[i] = model.NodeID(i)
	}
	var rec func(lo, hi int) error // ids[lo] is informed; cover (lo, hi]
	rec = func(lo, hi int) error {
		if lo >= hi {
			return nil
		}
		mid := (lo + hi + 1) / 2
		if err := sch.AddChild(ids[lo], ids[mid]); err != nil {
			return err
		}
		// The far half proceeds in parallel with the near half.
		if err := rec(mid, hi); err != nil {
			return err
		}
		return rec(lo, mid-1)
	}
	if err := rec(0, len(ids)-1); err != nil {
		return nil, err
	}
	return sch, nil
}

// FNF is the fastest-node-first greedy for the heterogeneous *node* model
// of Banikazemi et al. (1998) and Hall et al. (1998), transplanted to the
// receive-send model as prior art: each node has a single message
// initiation cost c(x) = osend(x); receiving costs are invisible to the
// heuristic. The tree it builds is then evaluated under the full
// receive-send model, so FNF pays for the receive overheads it ignored.
type FNF struct{}

// Name implements model.Scheduler.
func (FNF) Name() string { return "fnf-nodemodel" }

// Schedule implements model.Scheduler.
func (FNF) Schedule(set *model.MulticastSet) (*model.Schedule, error) {
	sch := model.NewSchedule(set)
	L := set.Latency
	// In the node model, after a send completing at time t the receiver is
	// immediately available; availability of the sender advances by c(x).
	pq := pqueue.New(set.N() + 1)
	pq.Push(0, set.Nodes[0].Send+L)
	for _, pi := range set.SortedDestinations() {
		it, ok := pq.Pop()
		if !ok {
			return nil, fmt.Errorf("baselines: FNF internal error: empty queue")
		}
		if err := sch.AddChild(it.Value, pi); err != nil {
			return nil, err
		}
		// Node-model availability: no receiving overhead.
		pq.Push(pi, it.Key+set.Nodes[pi].Send+L)
		pq.Push(it.Value, it.Key+set.Nodes[it.Value].Send)
	}
	return sch, nil
}

// Random builds a uniformly random multicast tree: destinations are
// shuffled and each attaches to a uniformly random already-attached node.
// Deterministic for a fixed Seed.
type Random struct {
	Seed int64
}

// Name implements model.Scheduler.
func (Random) Name() string { return "random" }

// Schedule implements model.Scheduler.
func (r Random) Schedule(set *model.MulticastSet) (*model.Schedule, error) {
	rng := rand.New(rand.NewSource(r.Seed))
	sch := model.NewSchedule(set)
	order := set.SortedDestinations()
	rng.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
	attached := []model.NodeID{0}
	for _, v := range order {
		p := attached[rng.Intn(len(attached))]
		if err := sch.AddChild(p, v); err != nil {
			return nil, err
		}
		attached = append(attached, v)
	}
	return sch, nil
}

// All returns one instance of every baseline scheduler. The random
// scheduler uses the given seed.
func All(randomSeed int64) []model.Scheduler {
	return []model.Scheduler{Star{}, Chain{}, Binomial{}, FNF{}, Random{Seed: randomSeed}}
}

var (
	_ model.Scheduler = Star{}
	_ model.Scheduler = Chain{}
	_ model.Scheduler = Binomial{}
	_ model.Scheduler = FNF{}
	_ model.Scheduler = Random{}
)
