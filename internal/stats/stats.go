// Package stats supplies the small statistical toolkit the benchmark
// harness uses: summaries of completion-time samples and aligned text
// tables for experiment output.
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Summary describes a sample of float64 observations.
type Summary struct {
	N                   int
	Min, Max, Mean, Std float64
	P50, P90, P99       float64
}

// Summarize computes a Summary. An empty sample yields a zero Summary.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	s := Summary{N: len(xs), Min: xs[0], Max: xs[0]}
	var sum, sq float64
	for _, x := range xs {
		sum += x
		sq += x * x
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
	}
	s.Mean = sum / float64(len(xs))
	variance := sq/float64(len(xs)) - s.Mean*s.Mean
	if variance > 0 {
		s.Std = math.Sqrt(variance)
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	s.P50 = Percentile(sorted, 0.50)
	s.P90 = Percentile(sorted, 0.90)
	s.P99 = Percentile(sorted, 0.99)
	return s
}

// Percentile returns the p-quantile (0 <= p <= 1) of an ascending-sorted
// sample using linear interpolation.
func Percentile(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	if p <= 0 {
		return sorted[0]
	}
	if p >= 1 {
		return sorted[len(sorted)-1]
	}
	pos := p * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	frac := pos - float64(lo)
	if lo+1 >= len(sorted) {
		return sorted[lo]
	}
	return sorted[lo]*(1-frac) + sorted[lo+1]*frac
}

// Ints converts an int64 sample for Summarize.
func Ints(xs []int64) []float64 {
	out := make([]float64, len(xs))
	for i, x := range xs {
		out[i] = float64(x)
	}
	return out
}

// GeoMean returns the geometric mean of positive observations; zero if the
// sample is empty or contains non-positive values.
func GeoMean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var logSum float64
	for _, x := range xs {
		if x <= 0 {
			return 0
		}
		logSum += math.Log(x)
	}
	return math.Exp(logSum / float64(len(xs)))
}

// Table accumulates rows and renders them with aligned columns, suitable
// for the experiment harness output.
type Table struct {
	header []string
	rows   [][]string
}

// NewTable creates a table with the given column headers.
func NewTable(header ...string) *Table {
	return &Table{header: header}
}

// AddRow appends a row; cells are formatted with %v.
func (t *Table) AddRow(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.3f", v)
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.rows = append(t.rows, row)
}

// String renders the table.
func (t *Table) String() string {
	cols := len(t.header)
	for _, r := range t.rows {
		if len(r) > cols {
			cols = len(r)
		}
	}
	widths := make([]int, cols)
	measure := func(r []string) {
		for i, c := range r {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	measure(t.header)
	for _, r := range t.rows {
		measure(r)
	}
	var b strings.Builder
	writeRow := func(r []string) {
		for i := 0; i < cols; i++ {
			cell := ""
			if i < len(r) {
				cell = r[i]
			}
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteString("\n")
	}
	writeRow(t.header)
	sep := make([]string, cols)
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, r := range t.rows {
		writeRow(r)
	}
	return b.String()
}
