package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestSummarizeBasic(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4, 5})
	if s.N != 5 || s.Min != 1 || s.Max != 5 {
		t.Errorf("summary = %+v", s)
	}
	if s.Mean != 3 {
		t.Errorf("mean = %v, want 3", s.Mean)
	}
	if math.Abs(s.Std-math.Sqrt(2)) > 1e-9 {
		t.Errorf("std = %v, want sqrt(2)", s.Std)
	}
	if s.P50 != 3 {
		t.Errorf("p50 = %v, want 3", s.P50)
	}
}

func TestSummarizeEmpty(t *testing.T) {
	s := Summarize(nil)
	if s.N != 0 || s.Mean != 0 {
		t.Errorf("empty summary = %+v", s)
	}
}

func TestPercentile(t *testing.T) {
	sorted := []float64{10, 20, 30, 40}
	cases := []struct {
		p    float64
		want float64
	}{
		{0, 10}, {1, 40}, {0.5, 25}, {1.0 / 3, 20}, {-1, 10}, {2, 40},
	}
	for _, c := range cases {
		if got := Percentile(sorted, c.p); math.Abs(got-c.want) > 1e-9 {
			t.Errorf("Percentile(%v) = %v, want %v", c.p, got, c.want)
		}
	}
	if Percentile(nil, 0.5) != 0 {
		t.Error("empty percentile should be 0")
	}
}

func TestPercentileMonotoneQuick(t *testing.T) {
	f := func(raw []float64, a, b float64) bool {
		xs := make([]float64, 0, len(raw))
		for _, x := range raw {
			if !math.IsNaN(x) && !math.IsInf(x, 0) {
				xs = append(xs, x)
			}
		}
		if len(xs) == 0 {
			return true
		}
		s := Summarize(xs)
		pa, pb := math.Abs(math.Mod(a, 1)), math.Abs(math.Mod(b, 1))
		if pa > pb {
			pa, pb = pb, pa
		}
		sorted := append([]float64(nil), xs...)
		// Summarize sorts internally; re-sort here for Percentile.
		for i := 1; i < len(sorted); i++ {
			for j := i; j > 0 && sorted[j] < sorted[j-1]; j-- {
				sorted[j], sorted[j-1] = sorted[j-1], sorted[j]
			}
		}
		return Percentile(sorted, pa) <= Percentile(sorted, pb) && s.Min <= s.P50 && s.P50 <= s.Max
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestIntsAndGeoMean(t *testing.T) {
	xs := Ints([]int64{2, 8})
	if len(xs) != 2 || xs[0] != 2 || xs[1] != 8 {
		t.Errorf("Ints = %v", xs)
	}
	if g := GeoMean(xs); math.Abs(g-4) > 1e-9 {
		t.Errorf("GeoMean = %v, want 4", g)
	}
	if GeoMean(nil) != 0 {
		t.Error("empty GeoMean should be 0")
	}
	if GeoMean([]float64{1, 0}) != 0 {
		t.Error("non-positive GeoMean should be 0")
	}
}

func TestTableRendering(t *testing.T) {
	tb := NewTable("name", "value", "ratio")
	tb.AddRow("greedy", 42, 1.0)
	tb.AddRow("longer-name", 1000, 2.345678)
	out := tb.String()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 4 {
		t.Fatalf("table lines = %d:\n%s", len(lines), out)
	}
	if !strings.Contains(lines[3], "2.346") {
		t.Errorf("float not formatted to 3 places:\n%s", out)
	}
	// All rows align: same rendered width.
	if len(lines[0]) != len(lines[1]) {
		t.Errorf("header and separator widths differ:\n%s", out)
	}
}
