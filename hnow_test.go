package hnow

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"
)

func figure1(t testing.TB) *MulticastSet {
	t.Helper()
	fast := Node{Send: 1, Recv: 1, Name: "fast"}
	slow := Node{Send: 2, Recv: 3, Name: "slow"}
	set, err := NewMulticastSet(1, slow, fast, fast, fast, slow)
	if err != nil {
		t.Fatal(err)
	}
	return set
}

func TestPublicAPIEndToEnd(t *testing.T) {
	set := figure1(t)
	g, err := Greedy(set)
	if err != nil {
		t.Fatal(err)
	}
	if CompletionTime(g) != 10 {
		t.Errorf("greedy RT = %d, want 10", CompletionTime(g))
	}
	if !IsLayered(g) {
		t.Error("greedy schedule not layered")
	}
	gr, err := GreedyWithReversal(set)
	if err != nil {
		t.Fatal(err)
	}
	if CompletionTime(gr) != 8 {
		t.Errorf("greedy+reversal RT = %d, want 8", CompletionTime(gr))
	}
	opt, err := OptimalRT(set)
	if err != nil {
		t.Fatal(err)
	}
	if opt != 8 {
		t.Errorf("optimal RT = %d, want 8", opt)
	}
	bf, err := BruteForceRT(set)
	if err != nil {
		t.Fatal(err)
	}
	if bf != opt {
		t.Errorf("brute force %d != DP %d", bf, opt)
	}
	p := TheoremBound(set)
	if float64(CompletionTime(g)) >= p.Bound(opt) {
		t.Errorf("Theorem 1 bound violated: %d >= %f", CompletionTime(g), p.Bound(opt))
	}
}

func TestGeneratePipeline(t *testing.T) {
	set, err := Generate(GenConfig{N: 80, K: 3, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range AllSchedulers(3) {
		sch, err := s.Schedule(set)
		if err != nil {
			t.Fatalf("%s: %v", s.Name(), err)
		}
		if err := sch.Validate(); err != nil {
			t.Fatalf("%s: %v", s.Name(), err)
		}
		res, err := Simulate(sch)
		if err != nil {
			t.Fatalf("%s: simulate: %v", s.Name(), err)
		}
		if res.Times.RT != CompletionTime(sch) {
			t.Fatalf("%s: DES RT %d != analytic %d", s.Name(), res.Times.RT, CompletionTime(sch))
		}
	}
}

func TestSerializationRoundTrip(t *testing.T) {
	set, err := Generate(GenConfig{N: 20, K: 2, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	sch, err := GreedyWithReversal(set)
	if err != nil {
		t.Fatal(err)
	}
	data, err := MarshalSchedule(sch)
	if err != nil {
		t.Fatal(err)
	}
	back, err := UnmarshalSchedule(data)
	if err != nil {
		t.Fatal(err)
	}
	if CompletionTime(back) != CompletionTime(sch) {
		t.Error("serialization changed completion time")
	}
	setData, err := MarshalSet(set)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := UnmarshalSet(setData); err != nil {
		t.Fatal(err)
	}
}

func TestRenderingSmoke(t *testing.T) {
	sch, err := GreedyWithReversal(figure1(t))
	if err != nil {
		t.Fatal(err)
	}
	if Gantt(sch, 60) == "" || DOT(sch) == "" || TreeString(sch) == "" {
		t.Error("renderers returned empty output")
	}
}

func TestCollectivesPipeline(t *testing.T) {
	set, err := Generate(GenConfig{N: 30, K: 3, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	plan, err := PlanCollectives(GreedyScheduler(true), set)
	if err != nil {
		t.Fatal(err)
	}
	red, err := ReduceRT(plan.Schedule)
	if err != nil {
		t.Fatal(err)
	}
	bar, err := BarrierRT(plan.Schedule)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Reduce != red || plan.Barrier != bar || plan.Barrier != red+plan.Broadcast {
		t.Error("collective plan inconsistent")
	}
}

func TestLiveSmoke(t *testing.T) {
	sch, err := GreedyWithReversal(figure1(t))
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunLive(sch, 2*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	// Analytic RT is 8; measurement must be at least that and not wildly
	// more.
	if res.RT < 7.5 || res.RT > 16 {
		t.Errorf("live RT = %.2f, analytic 8", res.RT)
	}
}

func TestTable(t *testing.T) {
	set := figure1(t)
	table, err := BuildOptimalTable(set)
	if err != nil {
		t.Fatal(err)
	}
	v, err := table.Lookup(1, []int{3, 1})
	if err != nil {
		t.Fatal(err)
	}
	if v != 8 {
		t.Errorf("table lookup = %d, want 8", v)
	}
}

// TestInvariantsQuick property-checks the full pipeline: for random
// instances, optimal <= greedy+rev <= greedy <= every baseline is false in
// general, but the following always hold:
//
//	opt <= rev <= greedy < Theorem-1 bound, and all schedules validate.
func TestInvariantsQuick(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	f := func(seed int64, nRaw uint8, kRaw uint8) bool {
		n := 1 + int(nRaw%7)
		k := 1 + int(kRaw%3)
		set, err := Generate(GenConfig{N: n, K: k, MaxSend: 20, Seed: seed})
		if err != nil {
			return false
		}
		g, err := Greedy(set)
		if err != nil {
			return false
		}
		gr, err := GreedyWithReversal(set)
		if err != nil {
			return false
		}
		opt, err := OptimalRT(set)
		if err != nil {
			return false
		}
		rt, rtRev := CompletionTime(g), CompletionTime(gr)
		if opt > rtRev || rtRev > rt {
			return false
		}
		p := TheoremBound(set)
		return float64(rt) < p.Bound(opt)
	}
	cfg := &quick.Config{MaxCount: 120, Rand: rng}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}
