package hnow

import (
	"strings"
	"testing"
)

// TestAPIWrappers exercises the remaining public facade functions so the
// API surface stays wired to the right internals.
func TestAPIWrappers(t *testing.T) {
	set, err := Generate(GenConfig{N: 12, K: 2, Seed: 21})
	if err != nil {
		t.Fatal(err)
	}

	// Manual construction via NewSchedule.
	manual := NewSchedule(set)
	prev := NodeID(0)
	for v := 1; v < len(set.Nodes); v++ {
		if err := manual.AddChild(prev, NodeID(v)); err != nil {
			t.Fatal(err)
		}
	}
	if DeliveryCompletionTime(manual) <= 0 {
		t.Error("DeliveryCompletionTime not positive for a chain")
	}

	// Scheduler constructors.
	for _, s := range []Scheduler{
		OptimalScheduler(),
		SlowestFirstScheduler(),
		LocalSearchScheduler(3),
		AnnealingScheduler(5, 100),
		PostalScheduler(),
	} {
		sch, err := s.Schedule(set)
		if err != nil {
			t.Fatalf("%s: %v", s.Name(), err)
		}
		if err := sch.Validate(); err != nil {
			t.Fatalf("%s: %v", s.Name(), err)
		}
	}

	// Node-model facade.
	inst := NodeModelFrom(set)
	if inst.N() != set.N() {
		t.Error("NodeModelFrom lost destinations")
	}
	nmSch, err := NodeModelSchedule(set)
	if err != nil {
		t.Fatal(err)
	}
	if err := nmSch.Validate(); err != nil {
		t.Fatal(err)
	}

	// Straggler perturbation through the facade.
	g, err := GreedyWithReversal(set)
	if err != nil {
		t.Fatal(err)
	}
	slow, err := SimulatePerturbed(g, Slowdown(0, 3))
	if err != nil {
		t.Fatal(err)
	}
	if slow.Times.RT <= CompletionTime(g) {
		t.Error("slowing the source did not delay completion")
	}

	// Default network and renderers.
	if err := DefaultNetwork().Validate(); err != nil {
		t.Errorf("DefaultNetwork invalid: %v", err)
	}
	if !strings.Contains(Gantt(g, 40), "RT=") {
		t.Error("Gantt output malformed")
	}
	if !strings.Contains(DOT(g), "digraph") {
		t.Error("DOT output malformed")
	}
	if TreeString(g) == "" {
		t.Error("TreeString empty")
	}

	// Ratio stats re-export.
	var rs RatioStats = set.Ratios()
	if rs.AlphaMax < rs.AlphaMin {
		t.Error("ratio stats inverted")
	}
}

func TestSplitSegmentsFacade(t *testing.T) {
	set, err := Generate(GenConfig{N: 8, K: 2, MaxSend: 32, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	sp, err := SplitSegments(set, 4)
	if err != nil {
		t.Fatal(err)
	}
	for i := range sp.Nodes {
		if sp.Nodes[i].Send > set.Nodes[i].Send {
			t.Fatal("split increased an overhead")
		}
	}
	if _, err := SplitSegments(set, 0); err == nil {
		t.Error("SplitSegments accepted 0 segments")
	}
}

func TestBruteForceFacadeLimit(t *testing.T) {
	set, err := Generate(GenConfig{N: 30, K: 2, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := BruteForceRT(set); err == nil {
		t.Error("brute force accepted 30 destinations")
	}
}

func TestOptimalityGapFacade(t *testing.T) {
	set, err := Generate(GenConfig{N: 100, K: 3, Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	sch, err := GreedyWithReversal(set)
	if err != nil {
		t.Fatal(err)
	}
	gap, err := OptimalityGap(sch)
	if err != nil {
		t.Fatal(err)
	}
	if gap < 1 || gap > 4 {
		t.Errorf("gap = %f, implausible for greedy", gap)
	}
}
