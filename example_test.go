package hnow_test

import (
	"fmt"

	hnow "repro"
)

// The package examples all use the paper's Figure 1 instance: a slow
// source (send 2, recv 3), three fast destinations (1, 1) and one slow
// destination (2, 3), network latency 1.

func figure1() *hnow.MulticastSet {
	fast := hnow.Node{Send: 1, Recv: 1, Name: "fast"}
	slow := hnow.Node{Send: 2, Recv: 3, Name: "slow"}
	set, err := hnow.NewMulticastSet(1, slow, fast, fast, fast, slow)
	if err != nil {
		panic(err)
	}
	return set
}

func ExampleGreedy() {
	sch, err := hnow.Greedy(figure1())
	if err != nil {
		panic(err)
	}
	fmt.Println(hnow.CompletionTime(sch), hnow.IsLayered(sch))
	// Output: 10 true
}

func ExampleGreedyWithReversal() {
	sch, err := hnow.GreedyWithReversal(figure1())
	if err != nil {
		panic(err)
	}
	fmt.Println(hnow.CompletionTime(sch))
	// Output: 8
}

func ExampleOptimalRT() {
	opt, err := hnow.OptimalRT(figure1())
	if err != nil {
		panic(err)
	}
	fmt.Println(opt)
	// Output: 8
}

func ExampleTheoremBound() {
	set := figure1()
	p := hnow.TheoremBound(set)
	fmt.Printf("amin=%.1f amax=%.1f beta=%d C=%.0f bound(8)=%.0f\n",
		p.AlphaMin, p.AlphaMax, p.Beta, p.C, p.Bound(8))
	// Output: amin=1.0 amax=1.5 beta=2 C=4 bound(8)=34
}

func ExampleSimulate() {
	sch, err := hnow.GreedyWithReversal(figure1())
	if err != nil {
		panic(err)
	}
	res, err := hnow.Simulate(sch)
	if err != nil {
		panic(err)
	}
	fmt.Println(res.Times.RT == hnow.CompletionTime(sch))
	// Output: true
}

func ExampleBuildOptimalTable() {
	table, err := hnow.BuildOptimalTable(figure1())
	if err != nil {
		panic(err)
	}
	// Optimal completion for a multicast from a slow source (type 1) to
	// two fast destinations.
	rt, err := table.Lookup(1, []int{2, 0})
	if err != nil {
		panic(err)
	}
	fmt.Println(rt)
	// Output: 6
}

func ExampleLowerBound() {
	set := figure1()
	lb := hnow.LowerBound(set)
	opt, _ := hnow.OptimalRT(set)
	fmt.Println(lb <= opt, lb >= 6)
	// Output: true true
}

func ExamplePipelineRT() {
	sch, err := hnow.GreedyWithReversal(figure1())
	if err != nil {
		panic(err)
	}
	one, err := hnow.PipelineRT(sch, 1)
	if err != nil {
		panic(err)
	}
	fmt.Println(one == hnow.CompletionTime(sch))
	// Output: true
}

func ExampleReduceRT() {
	sch, err := hnow.GreedyWithReversal(figure1())
	if err != nil {
		panic(err)
	}
	rt, err := hnow.ReduceRT(sch)
	if err != nil {
		panic(err)
	}
	fmt.Println(rt > 0)
	// Output: true
}
